"""IR → WebAssembly code generator.

Layout: global scalars become Wasm globals; global arrays live in linear
memory (row-major, 8-aligned) above a small reserved page.  Initialised
arrays are emitted as data segments inside the initially committed pages;
zero-initialised arrays sit above them, and a generated ``__mem_init``
routine grows the memory up to data + heap + stack at instantiation time —
one ``memory.grow`` per *growth-granule*, which is how the Cheerp (64 KiB
granule) vs Emscripten (16 MiB granule) performance/memory trade-off of
§4.2.2 arises.

Vectorized loops (``SFor.vector_width``) have no SIMD target in Wasm MVP:
the generator emits the loop scalar plus per-iteration lane-bookkeeping
instructions — the "LLVM optimizations are not designed for Wasm"
mechanism behind Table 2's counter-intuitive execution times.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.ir.nodes import (
    EBin, ECall, ECast, EConst, EGlobal, ELoad, ELocal, ESelect, EUn,
    SAssign, SBreak, SContinue, SDoWhile, SExpr, SFor, SGlobalSet, SIf,
    SReturn, SStore, SWhile, elem_size, is_float,
)
from repro.wasm.instructions import Op
from repro.wasm.module import (
    DataSegment, FuncType, Function as WFunction, GlobalVar, HostImport,
    MemorySpec, WasmModule,
)

WASM_PAGE = 65536

#: libm functions lowered to native Wasm instructions.
_NATIVE_MATH = {"sqrt": Op.F64_SQRT, "fabs": Op.F64_ABS,
                "floor": Op.F64_FLOOR, "ceil": Op.F64_CEIL}

#: libm functions Cheerp cannot compile from libc (§3.2) — they become
#: imports of the JS ``Math`` object, paying the Wasm↔JS boundary cost.
_HOST_MATH = ("exp", "log", "pow", "sin", "cos", "fmod", "copysign")

_PRINT_IMPORTS = ("__print_i32", "__print_i64", "__print_f64")


@dataclass
class WasmCodegenOptions:
    """Toolchain-dependent lowering knobs (set by the compiler facades)."""

    heap_bytes: int = 8 * 1024 * 1024      # -cheerp-linear-heap-size
    stack_bytes: int = 1 * 1024 * 1024     # -cheerp-linear-stack-size
    growth_granule_pages: int = 1          # Cheerp: 1 page; Emscripten: 256
    strength_reduce: bool = False          # shl instead of mul for sizes
    peephole: bool = False                 # Binaryen-style cleanup
    vector_overhead_ops: int = 6           # scalarisation cost per iteration
    meta: dict = field(default_factory=dict)


def _vt(t):
    """IR value type → wasm value type."""
    if t == "f64":
        return "f64"
    if t in ("i64", "u64"):
        return "i64"
    return "i32"


def _is_unsigned(t):
    return t in ("u32", "u64", "u8", "u16")


_BIN_I32 = {"+": Op.I32_ADD, "-": Op.I32_SUB, "*": Op.I32_MUL,
            "&": Op.I32_AND, "|": Op.I32_OR, "^": Op.I32_XOR,
            "<<": Op.I32_SHL}
_BIN_I64 = {"+": Op.I64_ADD, "-": Op.I64_SUB, "*": Op.I64_MUL,
            "&": Op.I64_AND, "|": Op.I64_OR, "^": Op.I64_XOR,
            "<<": Op.I64_SHL}
_BIN_F64 = {"+": Op.F64_ADD, "-": Op.F64_SUB, "*": Op.F64_MUL,
            "/": Op.F64_DIV}
_CMP_F64 = {"==": Op.F64_EQ, "!=": Op.F64_NE, "<": Op.F64_LT,
            "<=": Op.F64_LE, ">": Op.F64_GT, ">=": Op.F64_GE}
_CMP_I32_S = {"==": Op.I32_EQ, "!=": Op.I32_NE, "<": Op.I32_LT_S,
              "<=": Op.I32_LE_S, ">": Op.I32_GT_S, ">=": Op.I32_GE_S}
_CMP_I32_U = {"==": Op.I32_EQ, "!=": Op.I32_NE, "<": Op.I32_LT_U,
              "<=": Op.I32_LE_U, ">": Op.I32_GT_U, ">=": Op.I32_GE_U}
_CMP_I64_S = {"==": Op.I64_EQ, "!=": Op.I64_NE, "<": Op.I64_LT_S,
              "<=": Op.I64_LE_S, ">": Op.I64_GT_S, ">=": Op.I64_GE_S}
# i64 has no le_u/ge_u in our subset; they are synthesised from gt_u/lt_u.
_CMP_I64_U = {"==": Op.I64_EQ, "!=": Op.I64_NE, "<": Op.I64_LT_U,
              ">": Op.I64_GT_U}

_LOADS = {("f64", 8): Op.F64_LOAD, ("i64", 8): Op.I64_LOAD,
          ("i32", 4): Op.I32_LOAD, ("i32", 1): None}


class _FuncGen:
    def __init__(self, codegen, func):
        self.cg = codegen
        self.func = func
        self.body = []
        self.local_index = {}
        self.local_types = []
        for i, (name, t) in enumerate(func.params):
            self.local_index[name] = i
        for name, t in func.locals.items():
            self.local_index[name] = len(self.local_index)
            self.local_types.append(_vt(t))
        self.scratch = None
        # Control stack: entries are "loop", "forcont", "block", "if".
        self.ctrl = []

    def emit(self, op, arg=None):
        self.body.append((int(op), arg))

    def get_scratch(self):
        if self.scratch is None:
            self.scratch = len(self.local_index) + 0
            self.local_index["__vlane"] = self.scratch
            self.local_types.append("i32")
        return self.scratch

    # -- expressions -----------------------------------------------------

    def expr(self, e):
        if isinstance(e, EConst):
            t = _vt(e.type)
            if t == "f64":
                self.emit(Op.F64_CONST, float(e.value))
            elif t == "i64":
                self.emit(Op.I64_CONST, _wrap(int(e.value), 64))
            else:
                self.emit(Op.I32_CONST, _wrap(int(e.value), 32))
        elif isinstance(e, ELocal):
            self.emit(Op.LOCAL_GET, self.local_index[e.name])
        elif isinstance(e, EGlobal):
            self.emit(Op.GLOBAL_GET, self.cg.global_index[e.name])
        elif isinstance(e, ELoad):
            self.load(e)
        elif isinstance(e, EBin):
            self.binop(e)
        elif isinstance(e, EUn):
            self.unop(e)
        elif isinstance(e, ECast):
            self.cast(e)
        elif isinstance(e, ECall):
            self.call(e)
        elif isinstance(e, ESelect):
            self.expr(e.then)
            self.expr(e.els)
            self.expr(e.cond)
            self.emit(Op.SELECT)
        else:
            raise CompileError(f"wasm codegen: bad expr {type(e).__name__}")

    def address(self, array_name, indices):
        """Push the flattened byte offset; returns the base for the memarg
        offset immediate."""
        array = self.cg.ir.arrays[array_name]
        base = self.cg.array_base[array_name]
        esize = elem_size(array.elem_type)
        self.expr(indices[0])
        for dim, index in zip(array.dims[1:], indices[1:]):
            self.emit(Op.I32_CONST, dim)
            self.emit(Op.I32_MUL)
            self.expr(index)
            self.emit(Op.I32_ADD)
        if esize > 1:
            if self.cg.options.strength_reduce:
                self.emit(Op.I32_CONST, esize.bit_length() - 1)
                self.emit(Op.I32_SHL)
            else:
                self.emit(Op.I32_CONST, esize)
                self.emit(Op.I32_MUL)
        return base

    def load(self, e):
        array = self.cg.ir.arrays[e.array]
        base = self.address(e.array, e.indices)
        et = array.elem_type
        if et == "f64":
            self.emit(Op.F64_LOAD, base)
        elif et in ("i64", "u64"):
            self.emit(Op.I64_LOAD, base)
        elif et in ("i32", "u32"):
            self.emit(Op.I32_LOAD, base)
        elif et == "u8":
            self.emit(Op.I32_LOAD8_U, base)
        elif et == "i8":
            self.emit(Op.I32_LOAD8_S, base)
        elif et == "u16":
            self.emit(Op.I32_LOAD16_U, base)
        else:
            raise CompileError(f"unsupported element type {et} on wasm")

    def binop(self, e):
        t = e.type
        op = e.op
        if op in ("==", "!=", "<", "<=", ">", ">="):
            ot = e.left.type
            self.expr(e.left)
            self.expr(e.right)
            if is_float(ot):
                self.emit(_CMP_F64[op])
            elif _vt(ot) == "i64":
                if _is_unsigned(ot) and op in ("<=", ">="):
                    # a <=u b  ==  !(a >u b);  a >=u b  ==  !(a <u b)
                    self.emit(Op.I64_GT_U if op == "<=" else Op.I64_LT_U)
                    self.emit(Op.I32_EQZ)
                    return
                table = _CMP_I64_U if _is_unsigned(ot) else _CMP_I64_S
                self.emit(table[op])
            else:
                table = _CMP_I32_U if _is_unsigned(ot) else _CMP_I32_S
                self.emit(table[op])
            return
        self.expr(e.left)
        self.expr(e.right)
        if is_float(t):
            self.emit(_BIN_F64[op])
            return
        wide = _vt(t) == "i64"
        if wide and op in ("<<", ">>") and _vt(e.right.type) != "i64":
            # i64 shifts take an i64 count; C shift counts are int.
            self.emit(Op.I64_EXTEND_I32_U)
        basic = _BIN_I64 if wide else _BIN_I32
        if op in basic:
            self.emit(basic[op])
        elif op == "/":
            if _is_unsigned(t):
                self.emit(Op.I64_DIV_U if wide else Op.I32_DIV_U)
            else:
                self.emit(Op.I64_DIV_S if wide else Op.I32_DIV_S)
        elif op == "%":
            if _is_unsigned(t):
                self.emit(Op.I64_REM_U if wide else Op.I32_REM_U)
            else:
                self.emit(Op.I64_REM_S if wide else Op.I32_REM_S)
        elif op == ">>":
            if _is_unsigned(t):
                self.emit(Op.I64_SHR_U if wide else Op.I32_SHR_U)
            else:
                self.emit(Op.I64_SHR_S if wide else Op.I32_SHR_S)
        elif op == "<<":
            self.emit(Op.I64_SHL if wide else Op.I32_SHL)
        else:
            raise CompileError(f"wasm codegen: bad int op {op!r}")

    def unop(self, e):
        if e.op == "neg":
            if is_float(e.type):
                self.expr(e.expr)
                self.emit(Op.F64_NEG)
            elif _vt(e.type) == "i64":
                self.emit(Op.I64_CONST, 0)
                self.expr(e.expr)
                self.emit(Op.I64_SUB)
            else:
                self.emit(Op.I32_CONST, 0)
                self.expr(e.expr)
                self.emit(Op.I32_SUB)
        elif e.op == "!":
            self.expr(e.expr)
            self.emit(Op.I64_EQZ if _vt(e.expr.type) == "i64"
                      else Op.I32_EQZ)
        elif e.op == "~":
            self.expr(e.expr)
            if _vt(e.type) == "i64":
                self.emit(Op.I64_CONST, -1)
                self.emit(Op.I64_XOR)
            else:
                self.emit(Op.I32_CONST, -1)
                self.emit(Op.I32_XOR)
        else:
            raise CompileError(f"wasm codegen: bad unop {e.op!r}")

    def cast(self, e):
        src = _vt(e.expr.type)
        dst = _vt(e.type)
        self.expr(e.expr)
        if src == dst:
            return
        unsigned_src = _is_unsigned(e.expr.type)
        if src == "i32" and dst == "f64":
            self.emit(Op.F64_CONVERT_I32_U if unsigned_src
                      else Op.F64_CONVERT_I32_S)
        elif src == "i64" and dst == "f64":
            self.emit(Op.F64_CONVERT_I64_S)
        elif src == "f64" and dst == "i32":
            self.emit(Op.I32_TRUNC_F64_S)
        elif src == "f64" and dst == "i64":
            self.emit(Op.I64_TRUNC_F64_S)
        elif src == "i32" and dst == "i64":
            self.emit(Op.I64_EXTEND_I32_U if unsigned_src
                      else Op.I64_EXTEND_I32_S)
        elif src == "i64" and dst == "i32":
            self.emit(Op.I32_WRAP_I64)
        else:
            raise CompileError(f"wasm codegen: bad cast {src}->{dst}")

    def call(self, e):
        if e.name in _NATIVE_MATH:
            self.expr(e.args[0])
            self.emit(_NATIVE_MATH[e.name])
            return
        if e.name == "abs":
            # |x| for i32: select(x, -x, x >= 0)
            self.expr(e.args[0])
            self.emit(Op.I32_CONST, 0)
            self.expr(e.args[0])
            self.emit(Op.I32_SUB)
            self.expr(e.args[0])
            self.emit(Op.I32_CONST, 0)
            self.emit(Op.I32_GE_S)
            self.emit(Op.SELECT)
            return
        for arg in e.args:
            self.expr(arg)
        self.emit(Op.CALL, self.cg.func_index[e.name])

    # -- statements --------------------------------------------------------

    def stmts(self, body):
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, s):
        if isinstance(s, SAssign):
            self.expr(s.expr)
            self.emit(Op.LOCAL_SET, self.local_index[s.name])
        elif isinstance(s, SGlobalSet):
            self.expr(s.expr)
            self.emit(Op.GLOBAL_SET, self.cg.global_index[s.name])
        elif isinstance(s, SStore):
            array = self.cg.ir.arrays[s.array]
            base = self.address(s.array, s.indices)
            self.expr(s.expr)
            et = array.elem_type
            if et == "f64":
                self.emit(Op.F64_STORE, base)
            elif et in ("i64", "u64"):
                self.emit(Op.I64_STORE, base)
            elif et in ("i32", "u32"):
                self.emit(Op.I32_STORE, base)
            elif et in ("i8", "u8"):
                self.emit(Op.I32_STORE8, base)
            elif et in ("i16", "u16"):
                self.emit(Op.I32_STORE16, base)
            else:
                raise CompileError(f"unsupported element type {et}")
        elif isinstance(s, SIf):
            self.expr(s.cond)
            self.emit(Op.IF)
            self.ctrl.append("if")
            self.stmts(s.then)
            if s.els:
                self.emit(Op.ELSE)
                self.stmts(s.els)
            self.ctrl.pop()
            self.emit(Op.END)
        elif isinstance(s, SWhile):
            self.emit(Op.BLOCK)
            self.ctrl.append("break")
            self.emit(Op.LOOP)
            self.ctrl.append("continue")
            if not (isinstance(s.cond, EConst) and s.cond.value):
                self.expr(s.cond)
                self.emit(Op.I32_EQZ)
                self.emit(Op.BR_IF, 1)
            self.stmts(s.body)
            self.emit(Op.BR, 0)
            self.ctrl.pop()
            self.emit(Op.END)
            self.ctrl.pop()
            self.emit(Op.END)
        elif isinstance(s, SDoWhile):
            self.emit(Op.BLOCK)
            self.ctrl.append("break")
            self.emit(Op.LOOP)
            self.ctrl.append("loop0")   # back-edge target, not continue
            self.emit(Op.BLOCK)
            self.ctrl.append("continue")
            self.stmts(s.body)
            self.ctrl.pop()
            self.emit(Op.END)
            self.expr(s.cond)
            self.emit(Op.BR_IF, 0)
            self.ctrl.pop()
            self.emit(Op.END)
            self.ctrl.pop()
            self.emit(Op.END)
        elif isinstance(s, SFor):
            self.stmts(s.init)
            self.emit(Op.BLOCK)
            self.ctrl.append("break")
            self.emit(Op.LOOP)
            self.ctrl.append("loop0")
            if not (isinstance(s.cond, EConst) and s.cond.value):
                self.expr(s.cond)
                self.emit(Op.I32_EQZ)
                self.emit(Op.BR_IF, 1)
            if s.vector_width:
                self.vector_overhead(s.vector_width)
            self.emit(Op.BLOCK)
            self.ctrl.append("continue")
            self.stmts(s.body)
            self.ctrl.pop()
            self.emit(Op.END)
            self.stmts(s.step)
            self.emit(Op.BR, 0)
            self.ctrl.pop()
            self.emit(Op.END)
            self.ctrl.pop()
            self.emit(Op.END)
        elif isinstance(s, SBreak):
            self.emit(Op.BR, self.depth_to("break"))
        elif isinstance(s, SContinue):
            target = self.depth_to("continue")
            self.emit(Op.BR, target)
        elif isinstance(s, SReturn):
            if s.expr is not None:
                self.expr(s.expr)
            self.emit(Op.RETURN)
        elif isinstance(s, SExpr):
            had_result = isinstance(s.expr, ECall) and s.expr.type
            self.expr(s.expr)
            if had_result:
                self.emit(Op.DROP)
        else:
            raise CompileError(f"wasm codegen: bad stmt {type(s).__name__}")

    def depth_to(self, kind):
        for depth, frame in enumerate(reversed(self.ctrl)):
            if frame == kind:
                return depth
        raise CompileError(f"{kind} outside loop")

    def vector_overhead(self, width):
        """Per-iteration lane bookkeeping the scalarised vector loop pays
        (the Wasm backend has no SIMD; LLVM's vectorised IR is unrolled
        back through the virtual stack)."""
        scratch = self.get_scratch()
        for lane in range(1, min(width, 1 +
                                 self.cg.options.vector_overhead_ops // 2)):
            self.emit(Op.I32_CONST, lane)
            self.emit(Op.LOCAL_SET, scratch)


def _wrap(value, bits):
    value &= (1 << bits) - 1
    if value >> (bits - 1):
        value -= 1 << bits
    return value


class _Codegen:
    def __init__(self, ir_module, options):
        self.ir = ir_module
        self.options = options
        self.global_index = {}
        self.func_index = {}
        self.array_base = {}

    def generate(self):
        opts = self.options
        out = WasmModule(name=self.ir.name)
        out.meta.update(opts.meta)

        # Imports: print + host math.
        for name in _PRINT_IMPORTS:
            t = {"__print_i32": "i32", "__print_i64": "i64",
                 "__print_f64": "f64"}[name]
            out.imports.append(HostImport("env", name, FuncType((t,), ())))
        for name in _HOST_MATH:
            nparams = 2 if name in ("pow", "fmod", "copysign") else 1
            out.imports.append(HostImport(
                "env", name, FuncType(("f64",) * nparams, ("f64",))))
        for i, imp in enumerate(out.imports):
            self.func_index[imp.name] = i

        # Globals.
        for i, g in enumerate(self.ir.globals.values()):
            self.global_index[g.name] = i
            init = float(g.init) if g.type == "f64" else int(g.init)
            out.globals.append(GlobalVar(g.name, _vt(g.type), True, init))

        # Memory layout: reserved page, then initialised arrays (data
        # segments), then zero arrays.
        cursor = 1024
        data_segments = []
        initialised = [a for a in self.ir.arrays.values() if a.init]
        zeroed = [a for a in self.ir.arrays.values() if not a.init]
        for array in initialised:
            cursor = _align(cursor, 8)
            self.array_base[array.name] = cursor
            data_segments.append(DataSegment(cursor, _pack(array)))
            cursor += array.byte_size
        init_end = cursor
        for array in zeroed:
            cursor = _align(cursor, 8)
            self.array_base[array.name] = cursor
            cursor += array.byte_size
        data_end = cursor

        initial_pages = max(1, _ceil_div(init_end, WASM_PAGE))
        granule = opts.growth_granule_pages
        target_pages = _ceil_div(data_end + opts.heap_bytes
                                 + opts.stack_bytes, WASM_PAGE)
        target_pages = _ceil_div(target_pages, granule) * granule
        target_pages = max(target_pages, initial_pages)
        out.memory = MemorySpec(min_pages=initial_pages,
                                max_pages=max(target_pages * 2, 32768))
        out.data = data_segments

        # Function indices (two passes for forward calls).
        next_index = len(out.imports)
        ir_funcs = [f for f in self.ir.functions.values() if f.body]
        for f in ir_funcs:
            self.func_index[f.name] = next_index
            next_index += 1
        self.func_index["__mem_init"] = next_index

        for f in ir_funcs:
            gen = _FuncGen(self, f)
            gen.stmts(f.body)
            if opts.peephole:
                gen.body = peephole(gen.body)
            ftype = FuncType(tuple(_vt(t) for _, t in f.params),
                             (_vt(f.ret),) if f.ret else ())
            out.functions.append(WFunction(
                f.name, ftype, gen.local_types, gen.body,
                exported=f.exported or f.name == "main"))

        out.functions.append(self._mem_init(target_pages, granule))
        out.start = "__mem_init"
        out.meta.update({
            "data_bytes": data_end - 1024,
            "target_pages": target_pages,
            "initial_pages": initial_pages,
        })
        return out

    def _mem_init(self, target_pages, granule):
        """Runtime memory bootstrap: grow committed memory up to the
        data+heap+stack requirement, ``granule`` pages per grow call."""
        body = [
            (int(Op.BLOCK), None),
            (int(Op.LOOP), None),
            (int(Op.MEMORY_SIZE), None),
            (int(Op.I32_CONST), target_pages),
            (int(Op.I32_GE_U), None),
            (int(Op.BR_IF), 1),
            (int(Op.I32_CONST), granule),
            (int(Op.MEMORY_GROW), None),
            (int(Op.DROP), None),
            (int(Op.BR), 0),
            (int(Op.END), None),
            (int(Op.END), None),
        ]
        return WFunction("__mem_init", FuncType((), ()), [], body)


def _align(value, alignment):
    return (value + alignment - 1) // alignment * alignment


def _ceil_div(a, b):
    return -(-a // b)


def _pack(array):
    et = array.elem_type
    fmt = {"f64": "<d", "i64": "<q", "u64": "<Q", "i32": "<i", "u32": "<I",
           "i8": "<b", "u8": "<B", "i16": "<h", "u16": "<H"}[et]
    values = list(array.init) + [0] * (array.count - len(array.init))
    if et == "f64":
        return b"".join(struct.pack(fmt, float(v)) for v in values)
    size_bits = {"i8": 8, "u8": 8, "i16": 16, "u16": 16, "i32": 32,
                 "u32": 32, "i64": 64, "u64": 64}[et]
    mask = (1 << size_bits) - 1
    packed = bytearray()
    unsigned_fmt = {"<b": "<B", "<h": "<H", "<i": "<I", "<q": "<Q"}.get(
        fmt, fmt)
    for v in values:
        packed += struct.pack(unsigned_fmt, int(v) & mask)
    return bytes(packed)


def peephole(body):
    """Binaryen-style cleanups Emscripten applies after codegen:
    ``local.set x; local.get x`` → ``local.tee x``, additions of zero and
    multiplications by one are dropped."""
    out = []
    i = 0
    n = len(body)
    while i < n:
        op, arg = body[i]
        nxt = body[i + 1] if i + 1 < n else (None, None)
        if op == Op.LOCAL_SET and nxt[0] == Op.LOCAL_GET and arg == nxt[1]:
            out.append((int(Op.LOCAL_TEE), arg))
            i += 2
            continue
        if op == Op.I32_CONST and arg == 0 and nxt[0] == Op.I32_ADD:
            i += 2
            continue
        if op == Op.I32_CONST and arg == 1 and nxt[0] == Op.I32_MUL:
            i += 2
            continue
        if op == Op.F64_CONST and arg == 0.0 and nxt[0] == Op.F64_ADD:
            i += 2
            continue
        if op == Op.F64_CONST and arg == 1.0 and nxt[0] == Op.F64_MUL:
            i += 2
            continue
        out.append(body[i])
        i += 1
    return out


def generate_wasm(ir_module, options=None):
    """Lower an IR module to a :class:`WasmModule`."""
    return _Codegen(ir_module, options or WasmCodegenOptions()).generate()
