"""IR → x86-model code generator.

Globals and arrays live in a flat byte memory (globals first, arrays after,
8-aligned).  Expressions are lowered to virtual registers (the cost model is
pre-register-allocation; MOV/MOVI are cheap, as on a modern OoO core).

Vectorized loops: body instructions are emitted with the ``vector`` flag,
charging SIMD throughput — this is where ``-O2``'s ``-vectorize-loops``
pays off on x86 (Fig. 6) while hurting Wasm (Fig. 5).
"""

from __future__ import annotations

import struct

from repro.errors import CompileError
from repro.ir.nodes import (
    EBin, ECall, ECast, EConst, EGlobal, ELoad, ELocal, ESelect, EUn,
    SAssign, SBreak, SContinue, SDoWhile, SExpr, SFor, SGlobalSet, SIf,
    SReturn, SStore, SWhile, elem_size, is_float,
)
from repro.native.machine import NativeFunction, NativeProgram, NOp

_HOST_FUNCS = ("exp", "log", "pow", "sin", "cos", "fmod", "copysign",
               "__print_i32", "__print_i64", "__print_f64")

_BIN32 = {"+": NOp.ADD32, "-": NOp.SUB32, "*": NOp.MUL32, "&": NOp.AND32,
          "|": NOp.OR32, "^": NOp.XOR32, "<<": NOp.SHL32}
_BIN64 = {"+": NOp.ADD64, "-": NOp.SUB64, "*": NOp.MUL64, "&": NOp.AND64,
          "|": NOp.OR64, "^": NOp.XOR64, "<<": NOp.SHL64}
_BINF = {"+": NOp.FADD, "-": NOp.FSUB, "*": NOp.FMUL, "/": NOp.FDIV}
_CMPF = {"==": NOp.FEQ, "!=": NOp.FNE, "<": NOp.FLT, "<=": NOp.FLE,
         ">": NOp.FGT, ">=": NOp.FGE}
_CMP32_S = {"==": NOp.EQ32, "!=": NOp.NE32, "<": NOp.LTS32,
            "<=": NOp.LES32, ">": NOp.GTS32, ">=": NOp.GES32}
_CMP32_U = {"==": NOp.EQ32, "!=": NOp.NE32, "<": NOp.LTU32,
            "<=": NOp.LEU32, ">": NOp.GTU32, ">=": NOp.GEU32}
_CMP64_S = {"==": NOp.EQ64, "!=": NOp.NE64, "<": NOp.LTS64,
            "<=": NOp.LES64, ">": NOp.GTS64, ">=": NOp.GES64}
_CMP64_U = {"==": NOp.EQ64, "!=": NOp.NE64, "<": NOp.LTU64,
            "<=": NOp.LEU64, ">": NOp.GTU64, ">=": NOp.GEU64}

_LOAD = {"f64": NOp.LOADF, "i64": NOp.LOAD64, "u64": NOp.LOAD64,
         "i32": NOp.LOAD32, "u32": NOp.LOAD32, "i8": NOp.LOAD8S,
         "u8": NOp.LOAD8U, "u16": NOp.LOAD16U}
_STORE = {"f64": NOp.STOREF, "i64": NOp.STORE64, "u64": NOp.STORE64,
          "i32": NOp.STORE32, "u32": NOp.STORE32, "i8": NOp.STORE8,
          "u8": NOp.STORE8, "i16": NOp.STORE16, "u16": NOp.STORE16}


def _is_unsigned(t):
    return t in ("u32", "u64", "u8", "u16")


def _wide(t):
    return t in ("i64", "u64")


class _X86FuncGen:
    def __init__(self, codegen, func):
        self.cg = codegen
        self.func = func
        self.code = []
        self.reg_of = {}
        for i, (name, _t) in enumerate(func.params):
            self.reg_of[name] = i
        for name in func.locals:
            self.reg_of[name] = len(self.reg_of)
        self.next_reg = len(self.reg_of)
        self.loops = []       # (break_patch_list, continue_patch_list)
        self.vector_depth = 0

    def fresh(self):
        reg = self.next_reg
        self.next_reg += 1
        return reg

    def emit(self, op, dst=-1, a=0, b=0):
        self.code.append((int(op), dst, a, b,
                          1 if self.vector_depth else 0))
        return len(self.code) - 1

    def patch(self, pc, target=None):
        op, dst, a, b, v = self.code[pc]
        self.code[pc] = (op, target if target is not None
                         else len(self.code), a, b, v)

    # -- expressions -------------------------------------------------------

    def expr(self, e):
        """Lower an expression; returns the register holding its value."""
        if isinstance(e, EConst):
            reg = self.fresh()
            value = float(e.value) if is_float(e.type) else int(e.value)
            self.emit(NOp.MOVI, reg, value)
            return reg
        if isinstance(e, ELocal):
            return self.reg_of[e.name]
        if isinstance(e, EGlobal):
            reg = self.fresh()
            addr = self.fresh()
            self.emit(NOp.MOVI, addr, self.cg.global_addr[e.name])
            op = NOp.LOADF if is_float(e.type) else (
                NOp.LOAD64 if _wide(e.type) else NOp.LOAD32)
            self.emit(op, reg, addr, 0)
            return reg
        if isinstance(e, ELoad):
            addr = self.address(e.array, e.indices)
            reg = self.fresh()
            et = self.cg.ir.arrays[e.array].elem_type
            self.emit(_LOAD[et], reg, addr, self.cg.array_addr[e.array])
            return reg
        if isinstance(e, EBin):
            return self.binop(e)
        if isinstance(e, EUn):
            return self.unop(e)
        if isinstance(e, ECast):
            return self.cast(e)
        if isinstance(e, ECall):
            return self.call(e)
        if isinstance(e, ESelect):
            c = self.expr(e.cond)
            t = self.expr(e.then)
            f = self.expr(e.els)
            reg = self.fresh()
            self.emit(NOp.SELECT, reg, (c, t, f))
            return reg
        raise CompileError(f"x86 codegen: bad expr {type(e).__name__}")

    def address(self, array_name, indices):
        array = self.cg.ir.arrays[array_name]
        esize = elem_size(array.elem_type)
        reg = self.expr(indices[0])
        for dim, index in zip(array.dims[1:], indices[1:]):
            dim_reg = self.fresh()
            self.emit(NOp.MOVI, dim_reg, dim)
            tmp = self.fresh()
            self.emit(NOp.MUL32, tmp, reg, dim_reg)
            idx = self.expr(index)
            reg2 = self.fresh()
            self.emit(NOp.ADD32, reg2, tmp, idx)
            reg = reg2
        if esize > 1:
            shift = self.fresh()
            self.emit(NOp.MOVI, shift, esize.bit_length() - 1)
            out = self.fresh()
            self.emit(NOp.SHL32, out, reg, shift)
            reg = out
        return reg

    def binop(self, e):
        op = e.op
        if op in ("==", "!=", "<", "<=", ">", ">="):
            ot = e.left.type
            a = self.expr(e.left)
            b = self.expr(e.right)
            dst = self.fresh()
            if is_float(ot):
                table = _CMPF
            elif _wide(ot):
                table = _CMP64_U if _is_unsigned(ot) else _CMP64_S
            else:
                table = _CMP32_U if _is_unsigned(ot) else _CMP32_S
            self.emit(table[op], dst, a, b)
            return dst
        a = self.expr(e.left)
        b = self.expr(e.right)
        dst = self.fresh()
        t = e.type
        if is_float(t):
            self.emit(_BINF[op], dst, a, b)
            return dst
        wide = _wide(t)
        basic = _BIN64 if wide else _BIN32
        if op in basic:
            self.emit(basic[op], dst, a, b)
        elif op == "/":
            if _is_unsigned(t):
                self.emit(NOp.DIVU64 if wide else NOp.DIVU32, dst, a, b)
            else:
                self.emit(NOp.DIVS64 if wide else NOp.DIVS32, dst, a, b)
        elif op == "%":
            if _is_unsigned(t):
                self.emit(NOp.REMU64 if wide else NOp.REMU32, dst, a, b)
            else:
                self.emit(NOp.REMS64 if wide else NOp.REMS32, dst, a, b)
        elif op == ">>":
            if _is_unsigned(t):
                self.emit(NOp.SHRU64 if wide else NOp.SHRU32, dst, a, b)
            else:
                self.emit(NOp.SHRS64 if wide else NOp.SHRS32, dst, a, b)
        else:
            raise CompileError(f"x86 codegen: bad int op {op!r}")
        return dst

    def unop(self, e):
        a = self.expr(e.expr)
        dst = self.fresh()
        if e.op == "neg":
            if is_float(e.type):
                self.emit(NOp.FNEG, dst, a)
            else:
                self.emit(NOp.NEG64 if _wide(e.type) else NOp.NEG32,
                          dst, a)
        elif e.op == "!":
            self.emit(NOp.NOT64 if _wide(e.expr.type) else NOp.NOT32,
                      dst, a)
        elif e.op == "~":
            self.emit(NOp.BNOT64 if _wide(e.type) else NOp.BNOT32, dst, a)
        else:
            raise CompileError(f"x86 codegen: bad unop {e.op!r}")
        return dst

    def cast(self, e):
        src, dst_t = e.expr.type, e.type
        # x86 folds constant conversions into immediates (constant pool):
        # rematerialised const+convert pairs are free here, unlike on the
        # Wasm virtual stack (the Fig. 8 asymmetry).
        if isinstance(e.expr, EConst) and is_float(dst_t) \
                and not is_float(src):
            reg = self.fresh()
            value = float(int(e.expr.value) & 0xFFFFFFFFFFFFFFFF
                          if _is_unsigned(src) else e.expr.value)
            self.emit(NOp.MOVI, reg, value)
            return reg
        a = self.expr(e.expr)
        if src == dst_t or (not is_float(src) and not is_float(dst_t)
                            and _wide(src) == _wide(dst_t)):
            return a
        dst = self.fresh()
        if is_float(dst_t):
            if _wide(src):
                self.emit(NOp.I2F_S64, dst, a)
            elif _is_unsigned(src):
                self.emit(NOp.I2F_U32, dst, a)
            else:
                self.emit(NOp.I2F_S32, dst, a)
        elif is_float(src):
            self.emit(NOp.F2I64 if _wide(dst_t) else NOp.F2I32, dst, a)
        elif _wide(dst_t):
            self.emit(NOp.ZX32TO64 if _is_unsigned(src) else NOp.SX32TO64,
                      dst, a)
        else:
            self.emit(NOp.TRUNC64TO32, dst, a)
        return dst

    def call(self, e):
        # Native libm instructions where x86 has them.
        if e.name == "sqrt":
            a = self.expr(e.args[0])
            dst = self.fresh()
            self.emit(NOp.FSQRT, dst, a)
            return dst
        if e.name == "fabs":
            a = self.expr(e.args[0])
            dst = self.fresh()
            self.emit(NOp.FABS, dst, a)
            return dst
        if e.name == "floor":
            a = self.expr(e.args[0])
            dst = self.fresh()
            self.emit(NOp.FFLOOR, dst, a)
            return dst
        if e.name == "ceil":
            a = self.expr(e.args[0])
            dst = self.fresh()
            self.emit(NOp.FCEIL, dst, a)
            return dst
        if e.name == "abs":
            a = self.expr(e.args[0])
            neg = self.fresh()
            self.emit(NOp.NEG32, neg, a)
            zero = self.fresh()
            self.emit(NOp.MOVI, zero, 0)
            cond = self.fresh()
            self.emit(NOp.GES32, cond, a, zero)
            dst = self.fresh()
            self.emit(NOp.SELECT, dst, (cond, a, neg))
            return dst
        arg_regs = [self.expr(a) for a in e.args]
        dst = self.fresh() if e.type else -1
        if e.name in _HOST_FUNCS:
            self.emit(NOp.HOSTCALL, dst, (e.name, arg_regs))
        else:
            self.emit(NOp.CALL, dst, (e.name, arg_regs))
        return dst

    # -- statements ----------------------------------------------------------

    def stmts(self, body):
        for s in body:
            self.stmt(s)

    def stmt(self, s):
        if isinstance(s, SAssign):
            value = self.expr(s.expr)
            self.emit(NOp.MOV, self.reg_of[s.name], value)
        elif isinstance(s, SGlobalSet):
            value = self.expr(s.expr)
            addr = self.fresh()
            self.emit(NOp.MOVI, addr, self.cg.global_addr[s.name])
            g = self.cg.ir.globals[s.name]
            op = NOp.STOREF if is_float(g.type) else (
                NOp.STORE64 if _wide(g.type) else NOp.STORE32)
            self.emit(op, value, addr, 0)
        elif isinstance(s, SStore):
            addr = self.address(s.array, s.indices)
            value = self.expr(s.expr)
            et = self.cg.ir.arrays[s.array].elem_type
            self.emit(_STORE[et], value, addr,
                      self.cg.array_addr[s.array])
        elif isinstance(s, SIf):
            cond = self.expr(s.cond)
            jz = self.emit(NOp.JZ, -1, cond)
            self.stmts(s.then)
            if s.els:
                jmp = self.emit(NOp.JMP)
                self.patch(jz)
                self.stmts(s.els)
                self.patch(jmp)
            else:
                self.patch(jz)
        elif isinstance(s, SWhile):
            start = len(self.code)
            exit_jump = None
            if not (isinstance(s.cond, EConst) and s.cond.value):
                cond = self.expr(s.cond)
                exit_jump = self.emit(NOp.JZ, -1, cond)
            self.loops.append(([], []))
            self.stmts(s.body)
            breaks, continues = self.loops.pop()
            for pc in continues:
                self.patch(pc, start)
            self.emit(NOp.JMP, start)
            if exit_jump is not None:
                self.patch(exit_jump)
            for pc in breaks:
                self.patch(pc)
        elif isinstance(s, SDoWhile):
            start = len(self.code)
            self.loops.append(([], []))
            self.stmts(s.body)
            breaks, continues = self.loops.pop()
            cond_pc = len(self.code)
            for pc in continues:
                self.patch(pc, cond_pc)
            cond = self.expr(s.cond)
            self.emit(NOp.JNZ, start, cond)
            for pc in breaks:
                self.patch(pc)
        elif isinstance(s, SFor):
            self.stmts(s.init)
            start = len(self.code)
            exit_jump = None
            if not (isinstance(s.cond, EConst) and s.cond.value):
                cond = self.expr(s.cond)
                exit_jump = self.emit(NOp.JZ, -1, cond)
            self.loops.append(([], []))
            if s.vector_width:
                self.vector_depth += 1
            self.stmts(s.body)
            if s.vector_width:
                self.vector_depth -= 1
            breaks, continues = self.loops.pop()
            step_pc = len(self.code)
            for pc in continues:
                self.patch(pc, step_pc)
            self.stmts(s.step)
            self.emit(NOp.JMP, start)
            if exit_jump is not None:
                self.patch(exit_jump)
            for pc in breaks:
                self.patch(pc)
        elif isinstance(s, SBreak):
            self.loops[-1][0].append(self.emit(NOp.JMP))
        elif isinstance(s, SContinue):
            self.loops[-1][1].append(self.emit(NOp.JMP))
        elif isinstance(s, SReturn):
            if s.expr is not None:
                reg = self.expr(s.expr)
                self.emit(NOp.RETV, -1, reg)
            else:
                self.emit(NOp.RET)
        elif isinstance(s, SExpr):
            self.expr(s.expr)
        else:
            raise CompileError(f"x86 codegen: bad stmt {type(s).__name__}")


def generate_x86(ir_module):
    """Lower an IR module to a :class:`NativeProgram`."""
    program = NativeProgram(name=ir_module.name)
    gen = _ModuleGen(ir_module, program)
    return gen.generate()


class _ModuleGen:
    def __init__(self, ir_module, program):
        self.ir = ir_module
        self.program = program
        self.global_addr = {}
        self.array_addr = {}

    def generate(self):
        cursor = 64
        data = []
        for g in self.ir.globals.values():
            cursor = (cursor + 7) // 8 * 8
            self.global_addr[g.name] = cursor
            if is_float(g.type):
                data.append((cursor, struct.pack("<d", float(g.init))))
            elif _wide(g.type):
                data.append((cursor, struct.pack(
                    "<Q", int(g.init) & 0xFFFFFFFFFFFFFFFF)))
            else:
                data.append((cursor, struct.pack(
                    "<I", int(g.init) & 0xFFFFFFFF)))
            cursor += 8
        from repro.backends.wasm_gen import _pack
        for array in self.ir.arrays.values():
            cursor = (cursor + 7) // 8 * 8
            self.array_addr[array.name] = cursor
            if array.init:
                data.append((cursor, _pack(array)))
            cursor += array.byte_size
        self.program.memory_bytes = cursor + 64
        self.program.data = data

        for f in self.ir.functions.values():
            if not f.body:
                continue
            gen = _X86FuncGen(self, f)
            gen.stmts(f.body)
            gen.emit(NOp.RET)
            self.program.functions[f.name] = NativeFunction(
                f.name, len(f.params), gen.next_reg, gen.code,
                returns_value=f.ret is not None)
        return self.program
