"""E4/E5: impact of input sizes (Fig. 9, Tables 3–6).

41 benchmarks × five input sizes × {Wasm, JS}, on Chrome (Table 3/4) and
Firefox (Table 5/6), all at -O2.
"""

from __future__ import annotations

from repro.analysis import format_table, speedup_slowdown_split
from repro.env import DESKTOP, chrome_desktop, firefox_desktop
from repro.suites import SIZE_CLASSES


def _fig9_benchmark(ctx, benchmark, profile, sizes):
    runner = ctx.runner(profile, DESKTOP)
    per_size = {}
    for size in sizes:
        wasm_m = runner.run_wasm(ctx.wasm(benchmark, size))
        js_m = runner.run_js(ctx.js(benchmark, size))
        per_size[size] = {
            "wasm_ms": wasm_m.time_ms, "js_ms": js_m.time_ms,
            "wasm_kb": wasm_m.memory_kb, "js_kb": js_m.memory_kb,
        }
    return per_size


def figure9_input_sizes(ctx, profile=None, sizes=SIZE_CLASSES):
    """Fig. 9 data: execution time and memory per benchmark per size for
    both targets, on one browser profile (default: desktop Chrome)."""
    profile = profile or chrome_desktop()
    data = {}
    for benchmark, per_size in ctx.map_benchmarks(
            _fig9_benchmark, profile=profile, sizes=tuple(sizes)):
        data[benchmark.name] = per_size
    return {"browser": profile.name, "data": data,
            "text": _render_fig9(profile.name, data, sizes)}


def input_size_tables(ctx, browser="chrome", fig9=None, sizes=SIZE_CLASSES):
    """Tables 3+4 (Chrome) or 5+6 (Firefox): speedup/slowdown splits and
    average memory usage per input size."""
    profile = chrome_desktop() if browser == "chrome" else firefox_desktop()
    fig9 = fig9 or figure9_input_sizes(ctx, profile, sizes)
    data = fig9["data"]
    exec_rows = []
    exec_stats = {}
    mem_rows = []
    mem_stats = {}
    for size in sizes:
        wasm_times = [data[b][size]["wasm_ms"] for b in data]
        js_times = [data[b][size]["js_ms"] for b in data]
        split = speedup_slowdown_split(wasm_times, js_times)
        exec_stats[size] = split
        exec_rows.append([
            size, split["sd_count"],
            split["sd_gmean"], split["su_count"], split["su_gmean"],
            split["all_gmean"]])
        js_avg = sum(data[b][size]["js_kb"] for b in data) / len(data)
        wasm_avg = sum(data[b][size]["wasm_kb"] for b in data) / len(data)
        mem_stats[size] = {"js_kb": js_avg, "wasm_kb": wasm_avg}
        mem_rows.append([size, js_avg, wasm_avg])
    exec_text = format_table(
        ["Input Size", "SD #", "SD gmean", "SU #", "SU gmean", "All gmean"],
        exec_rows,
        title=f"Table {'3' if browser == 'chrome' else '5'}: {browser} "
              "execution time statistics (Wasm vs JS)")
    mem_text = format_table(
        ["Input Size", "JavaScript (KB)", "WebAssembly (KB)"], mem_rows,
        title=f"Table {'4' if browser == 'chrome' else '6'}: {browser} "
              "average memory usage")
    return {"browser": browser, "exec": exec_stats, "memory": mem_stats,
            "fig9": fig9, "text": exec_text + "\n\n" + mem_text}


def _render_fig9(browser, data, sizes):
    headers = ["benchmark"]
    for size in sizes:
        headers += [f"{size} wasm ms", f"{size} js ms"]
    rows = []
    for name, per_size in data.items():
        row = [name]
        for size in sizes:
            row += [per_size[size]["wasm_ms"], per_size[size]["js_ms"]]
        rows.append(row)
    return format_table(headers, rows,
                        title=f"Figure 9 ({browser}): execution time by "
                              "input size")
