"""E6 (§4.4.1, Fig. 10): performance improvement with JIT optimization.

JS and Wasm, each measured with the default Chrome configuration and with
the JIT disabled (``--js-flags="--no-opt"`` for JS,
``--js-flags="--liftoff --no-wasm-tier-up"`` for Wasm, Table 11)."""

from __future__ import annotations

from repro.analysis import arithmetic_mean, format_table, geomean
from repro.env import ChromeFlags, DESKTOP, chrome_desktop


def _jit_benchmark(ctx, benchmark, size):
    default_runner = ctx.runner(chrome_desktop(), DESKTOP)
    nojit_js_runner = ctx.runner(
        chrome_desktop(), DESKTOP,
        flags=ChromeFlags.parse('chrome.exe --js-flags="--no-opt" '
                                "--incognito"))
    nojit_wasm_runner = ctx.runner(
        chrome_desktop(), DESKTOP,
        flags=ChromeFlags.parse(
            'chrome.exe --js-flags="--liftoff --no-wasm-tier-up" '
            "--incognito"))
    js_artifact = ctx.js(benchmark, size)
    with_jit = default_runner.run_js(js_artifact).time_ms
    without = nojit_js_runner.run_js(js_artifact).time_ms
    js_entry = {"improvement": without / with_jit,
                "suite": benchmark.suite}
    wasm_artifact = ctx.wasm(benchmark, size)
    with_jit = default_runner.run_wasm(wasm_artifact).time_ms
    without = nojit_wasm_runner.run_wasm(wasm_artifact).time_ms
    wasm_entry = {"improvement": without / with_jit,
                  "suite": benchmark.suite}
    return {"js": js_entry, "wasm": wasm_entry}


def figure10_jit_improvement(ctx, size="M"):
    data = {"js": {}, "wasm": {}}
    for benchmark, entry in ctx.map_benchmarks(_jit_benchmark, size=size):
        data["js"][benchmark.name] = entry["js"]
        data["wasm"][benchmark.name] = entry["wasm"]

    def group(target, suite):
        return [entry["improvement"] for entry in data[target].values()
                if entry["suite"] == suite]

    summary = {}
    for target in ("js", "wasm"):
        for suite in ("PolyBenchC", "CHStone"):
            values = group(target, suite)
            if values:
                summary[(target, suite)] = {
                    "geomean": geomean(values),
                    "average": arithmetic_mean(values)}
    rows = [[name, entry["improvement"]]
            for name, entry in data["js"].items()]
    text = format_table(["benchmark", "JS JIT improvement"], rows,
                        title="Figure 10 (a,b): JS improvement with JIT")
    rows = [[name, entry["improvement"]]
            for name, entry in data["wasm"].items()]
    text += "\n\n" + format_table(
        ["benchmark", "WASM JIT improvement"], rows,
        title="Figure 10 (c,d): Wasm improvement with JIT")
    summary_rows = [[t, s, v["geomean"], v["average"]]
                    for (t, s), v in summary.items()]
    text += "\n\n" + format_table(
        ["target", "suite", "geomean", "average"], summary_rows)
    return {"data": data, "summary": summary, "text": text}
