"""E11 (§4.6.2, Tables 10 and 12): real-world applications — Long.js,
Hyphenopoly.js, FFmpeg."""

from __future__ import annotations

from repro.analysis import format_table
from repro.apps import FfmpegApp, HyphenopolyApp, LongJsApp
from repro.cache import cached_result


def _run_app(app_cls):
    """The apps are deterministic and take no parameters, so their whole
    result dict is memoizable under the package code fingerprint.  The
    run hides its compiles inside ``compute``, so the memo entry carries
    the DET metrics diff and replays it on warm serves (cold and warm
    runs export identical deterministic metrics)."""
    return cached_result(f"app-{app_cls.__name__}", (),
                         lambda: app_cls().run(), replay_metrics=True)


def table10_realworld(ctx=None):
    """Table 10: the six experiments across the three applications."""
    longjs = _run_app(LongJsApp)
    hyphenopoly = _run_app(HyphenopolyApp)
    ffmpeg = _run_app(FfmpegApp)
    rows = []
    for label, entry in longjs.items():
        rows.append([f"Long.js {label}",
                     f"10,000 ops", entry["wasm_ms"], entry["js_ms"],
                     entry["ratio"]])
    for language, entry in hyphenopoly.items():
        rows.append([f"Hyphenopoly {language}",
                     "synthetic text", entry["wasm_ms"], entry["js_ms"],
                     entry["ratio"]])
    rows.append(["FFmpeg mp4→avi", f"{ffmpeg['frames']} frames",
                 ffmpeg["wasm_ms"], ffmpeg["js_ms"], ffmpeg["ratio"]])
    text = format_table(
        ["Benchmark", "Input", "WA Time (ms)", "JS Time (ms)", "Ratio"],
        rows, title="Table 10: real-world applications "
                    "(paper ratios: 0.73 / 0.52 / 0.58 / 0.94 / 0.96 / "
                    "0.275)")
    return {"longjs": longjs, "hyphenopoly": hyphenopoly, "ffmpeg": ffmpeg,
            "text": text}


def table12_longjs_ops(longjs=None):
    """Table 12 (Appendix D): arithmetic operation counts for Long.js."""
    longjs = longjs or _run_app(LongJsApp)
    headers = ["Benchmark", "impl", "ADD", "MUL", "DIV", "REM", "SHIFT",
               "AND", "OR", "Total"]
    rows = []
    for label, entry in longjs.items():
        for impl in ("js", "wasm"):
            ops = entry[f"{impl}_ops"]
            total = sum(ops.values())
            rows.append([label.capitalize(), impl.upper(),
                         ops["ADD"], ops["MUL"], ops["DIV"], ops["REM"],
                         ops["SHIFT"], ops["AND"], ops["OR"], total])
    text = format_table(headers, rows,
                        title="Table 12: Long.js arithmetic operation "
                              "counts")
    return {"data": longjs, "text": text}
