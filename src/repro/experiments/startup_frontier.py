"""E14: the baseline-compiler frontier — startup latency vs steady-state
speed across tier policies and hosts (Titzer-style, extending §4.4).

The paper's Table 7 compares tier *settings* inside two browsers.  This
experiment walks the larger tradeoff those settings sample: every
combination of host profile (3 desktop browsers + the standalone
runtimes of :mod:`repro.env.runtimes`) × tier policy (default, eager,
lazy, baseline-only, opt-only, hot-lazy) is one point with a
time-to-first-result and a steady-state execution speed — the frontier a
baseline compiler buys its place on.

Compile costs are *modeled*, not constant: every host's baseline tier is
priced by a :class:`~repro.engine.compilemodel.SinglePassCompiler` over
the module's real size and opclass mix, and every optimizing tier by a
:class:`~repro.engine.compilemodel.PassPipelineCompiler` over the pass
telemetry recorded while the artifact was actually optimized.  Browser
profiles keep their calibrated per-instruction rates for *measurements*
(golden parity); here those rates parameterize the modeled compilers (see
:func:`modeled_tiers`).

Each benchmark is executed once — raw execution stats are independent of
the tier policy (quality factors apply downstream) — and every
host × policy cell is then evaluated analytically from the shared
:class:`~repro.engine.compilemodel.CompilePlan`, with an exact
reconciliation check (:func:`verify_plan_reconciles`) asserting the
optimizing-tier cycles equal what the telemetry implies.

Environment switches: ``REPRO_FRONTIER_SIZE`` picks the input size
(default ``M``); ``REPRO_FRONTIER_BENCH`` restricts the benchmark set to
a comma-separated name list.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.analysis import format_table, geomean
from repro.engine.compilemodel import (
    PassPipelineCompiler,
    SinglePassCompiler,
)
from repro.engine.hostlib import wasm_host_imports
from repro.engine.tiering import TierController
from repro.env import DESKTOP, chrome_desktop, edge_desktop, firefox_desktop
from repro.env.runtimes import (
    SINGLE_PASS_WEIGHTS,
    wamr_interp,
    wasmer_singlepass,
    wasmtime_style,
    wasmtime_winch,
)
from repro.wasm import WasmVM

SIZE_ENV = "REPRO_FRONTIER_SIZE"
BENCH_ENV = "REPRO_FRONTIER_BENCH"

#: Tier-policy variants swept per host (name, policy rewrite).  The
#: "default" entry keeps the host's own policy; the rest force one
#: promotion strategy so hosts are comparable point-for-point.
POLICIES = (
    ("default", lambda p: p),
    ("eager", lambda p: replace(p, basic_enabled=True,
                                optimizing_enabled=True,
                                eager_opt_compile=True)),
    ("lazy", lambda p: replace(p, basic_enabled=True,
                               optimizing_enabled=True,
                               eager_opt_compile=False)),
    ("lazy-hot", lambda p: replace(p, basic_enabled=True,
                                   optimizing_enabled=True,
                                   eager_opt_compile=False,
                                   tier_up_instructions=20000)),
    ("baseline-only", lambda p: replace(p, basic_enabled=True,
                                        optimizing_enabled=False,
                                        eager_opt_compile=False)),
    ("opt-only", lambda p: replace(p, basic_enabled=False,
                                   optimizing_enabled=True,
                                   eager_opt_compile=False)),
)


def modeled_tiers(policy):
    """A browser profile's calibrated per-instruction tier pair as
    modeled compilers: the basic rate becomes a single-pass scan with
    the shared opclass emit weights, the optimizing rate parameterizes a
    pass-pipeline model (per-IR-node, per-rewrite, backend lowering).
    The calibrated rate sets the *scale*; the module's actual shape and
    telemetry set the cost."""
    basic_rate = policy.basic_compile_cost
    opt_rate = policy.opt_compile_cost
    return replace(
        policy,
        basic=SinglePassCompiler(
            name=policy.basic_name,
            exec_factor=policy.basic_exec_factor,
            cycles_per_instr=0.8 * basic_rate,
            opclass_weights=SINGLE_PASS_WEIGHTS,
            function_overhead_cycles=12.0 * basic_rate),
        optimizing=PassPipelineCompiler(
            name=policy.optimizing_name,
            exec_factor=policy.opt_exec_factor,
            cycles_per_node=0.4 * opt_rate,
            cycles_per_rewrite=1.0 * opt_rate,
            backend_cycles_per_instr=0.5 * opt_rate))


def frontier_hosts():
    """The host grid: ``(name, kind, tier_policy, startup_cycles,
    constants)`` per host.  Browsers get modeled compilers derived from
    their calibrated rates; standalone runtimes already carry them."""
    hosts = []
    for profile in (chrome_desktop(), firefox_desktop(), edge_desktop()):
        cfg = profile.wasm
        hosts.append({
            "name": f"{profile.name}-{profile.version}",
            "kind": "browser",
            "tiers": modeled_tiers(cfg.tier_policy()),
            "startup_cycles": profile.js.startup_cycles
                              + profile.page_overhead_cycles,
            "decode_cycles_per_byte": cfg.decode_cycles_per_byte,
            "instantiate_cycles": cfg.instantiate_cycles,
            "boundary_cost": cfg.boundary_cost,
            "cycles_per_ms": DESKTOP.cycles_per_ms,
        })
    for runtime in (wasmtime_style(), wasmtime_winch(), wamr_interp(),
                    wasmer_singlepass()):
        cfg = runtime.wasm
        hosts.append({
            "name": runtime.name,
            "kind": runtime.kind,
            "tiers": cfg.tier_policy(),
            "startup_cycles": runtime.startup_cycles,
            "decode_cycles_per_byte": cfg.decode_cycles_per_byte,
            "instantiate_cycles": cfg.instantiate_cycles,
            "boundary_cost": cfg.boundary_cost,
            "cycles_per_ms": runtime.cycles_per_ms,
        })
    return hosts


def verify_plan_reconciles(unit, policy, plan):
    """Assert the plan's per-tier cycles equal what the unit's telemetry
    and census imply — the 'no hardcoded constants' guarantee.  Raises
    ``AssertionError`` on any drift."""
    by_tier = plan.cycles_by_tier()
    for model, enabled in ((policy.basic, policy.basic_enabled),
                           (policy.optimizing, policy.optimizing_enabled)):
        charged = by_tier.get(model.name)
        if charged is None or not enabled:
            continue
        if isinstance(model, PassPipelineCompiler):
            expected = unit.static_instrs * model.backend_cycles_per_instr
            for _name, nodes_in, _out, rewrites in unit.pass_telemetry:
                expected += nodes_in * model.cycles_per_node
                expected += rewrites * model.cycles_per_rewrite
        elif isinstance(model, SinglePassCompiler):
            expected = model.function_overhead_cycles * unit.functions
            expected += unit.static_instrs * model.cycles_per_instr
            for idx, weight in model.opclass_weights:
                if idx < len(unit.opclass_counts):
                    expected += (unit.opclass_counts[idx] * (weight - 1.0)
                                 * model.cycles_per_instr)
        else:
            expected = model.compile_cycles(unit)
        assert charged == expected, (
            f"{model.name}: plan charged {charged} cycles, telemetry "
            f"implies {expected}")


def _evaluate_cell(host, policy_name, rewrite, unit, raw):
    """One frontier point, computed analytically from the raw run."""
    policy = rewrite(host["tiers"])
    plan = TierController(policy).plan(unit, raw["instructions"])
    verify_plan_reconciles(unit, policy, plan)
    decode = unit.code_bytes * host["decode_cycles_per_byte"]
    ttfr = (host["startup_cycles"] + decode + host["instantiate_cycles"]
            + plan.startup_compile_cycles)
    exec_cycles = (raw["exec_cycles"] * plan.exec_factor
                   + raw["boundary_crossings"] * host["boundary_cost"])
    total = ttfr + plan.tier_up_cycles + exec_cycles
    # Steady state: the tier the module ends the run in.
    on_opt = (policy.optimizing_enabled and
              (plan.tiered_up or policy.eager_opt_compile
               or not policy.basic_enabled))
    steady_factor = (policy.opt_exec_factor if on_opt
                     else policy.basic_exec_factor)
    per_ms = host["cycles_per_ms"]
    return {
        "ttfr_ms": ttfr / per_ms,
        "exec_ms": exec_cycles / per_ms,
        "total_ms": total / per_ms,
        "compile_cycles": plan.compile_cycles,
        "tier_cycles": plan.cycles_by_tier(),
        "steady_speed": 1.0 / steady_factor,
        "tiered_up": plan.tiered_up,
    }


def _frontier_benchmark(ctx, benchmark, size):
    """Worker: compile + run the benchmark once, then price every
    host × policy cell from the shared plan layer."""
    artifact = ctx.wasm(benchmark, size)
    telemetry = artifact.meta.get("pass_telemetry") or \
        artifact.module.meta.get("pass_telemetry", ())
    unit = artifact.module.code_unit(binary_size=len(artifact.binary),
                                     pass_telemetry=telemetry)
    output = []
    vm = WasmVM(boundary_cost=1.0)   # 1.0 => boundary_cycles == crossings
    instance = vm.instantiate(artifact.module,
                              wasm_host_imports(output, None))
    instance.invoke("main")
    raw = {
        "exec_cycles": instance.stats.cycles,
        "instructions": instance.stats.instructions,
        "boundary_crossings": instance.stats.boundary_cycles,
    }
    cells = {}
    for host in frontier_hosts():
        per_host = {}
        for policy_name, rewrite in POLICIES:
            per_host[policy_name] = _evaluate_cell(host, policy_name,
                                                   rewrite, unit, raw)
        cells[host["name"]] = per_host
    return cells


def _bench_subset(ctx):
    names = os.environ.get(BENCH_ENV)
    benchmarks = ctx.benchmarks()
    if names:
        wanted = {n.strip() for n in names.split(",") if n.strip()}
        benchmarks = [b for b in benchmarks if b.name in wanted]
    return benchmarks


def startup_frontier(ctx, size=None):
    """The frontier sweep: geomean per host × policy over the benchmark
    set, plus an ASCII frontier figure."""
    size = size or os.environ.get(SIZE_ENV, "M")
    subset = _bench_subset(ctx)
    orig_benchmarks = ctx.benchmarks
    ctx.benchmarks = lambda: subset
    try:
        results = ctx.map_benchmarks(_frontier_benchmark, size=size)
    finally:
        ctx.benchmarks = orig_benchmarks
    if not results:
        raise ValueError("startup_frontier: no benchmark results")

    hosts = frontier_hosts()
    data = {}
    for host in hosts:
        per_policy = {}
        for policy_name, _rewrite in POLICIES:
            cells = [cell[host["name"]][policy_name]
                     for _benchmark, cell in results]
            per_policy[policy_name] = {
                "ttfr_ms": geomean([c["ttfr_ms"] for c in cells]),
                "exec_ms": geomean([c["exec_ms"] for c in cells]),
                "total_ms": geomean([c["total_ms"] for c in cells]),
                "steady_speed": geomean([c["steady_speed"]
                                         for c in cells]),
                "tiered_up_fraction": (
                    sum(1 for c in cells if c["tiered_up"]) / len(cells)),
            }
        data[host["name"]] = {"kind": host["kind"], "policies": per_policy}

    text = _render(data, size, len(results))
    return {"data": data, "text": text,
            "benchmarks": [b.name for b, _ in results], "size": size}


def _render(data, size, num_benchmarks):
    rows = []
    for host_name, entry in data.items():
        for policy_name, cell in entry["policies"].items():
            rows.append([
                host_name, entry["kind"], policy_name,
                f"{cell['ttfr_ms']:.3f}",
                f"{cell['exec_ms']:.2f}",
                f"{cell['total_ms']:.2f}",
                f"{cell['steady_speed']:.2f}x",
                f"{cell['tiered_up_fraction'] * 100:.0f}%",
            ])
    table = format_table(
        ["host", "kind", "policy", "ttfr ms", "exec ms", "total ms",
         "steady speed", "tiered up"], rows)
    figure = _ascii_frontier(data)
    header = (f"E14. Startup latency vs steady-state speed frontier "
              f"(size {size}, {num_benchmarks} benchmark(s), geomean)\n")
    return header + table + "\n\n" + figure


def _ascii_frontier(data, width=64, height=16):
    """Scatter of the *default* policy per host: x = time-to-first-result
    (log scale), y = steady-state speed.  The frontier is the upper-left
    edge."""
    import math
    points = []
    for host_name, entry in data.items():
        cell = entry["policies"]["default"]
        points.append((host_name, cell["ttfr_ms"], cell["steady_speed"]))
    xs = [math.log10(max(p[1], 1e-6)) for p in points]
    ys = [p[2] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, _ttfr, _speed) in enumerate(points):
        mark = chr(ord("A") + idx)
        col = round((xs[idx] - x_lo) / x_span * (width - 1))
        row = round((y_hi - ys[idx]) / y_span * (height - 1))
        grid[row][col] = mark
        legend.append(f"  {mark} = {name} "
                      f"(ttfr {points[idx][1]:.3f} ms, "
                      f"steady {points[idx][2]:.2f}x)")
    lines = ["steady-state speed ^  (default policy per host; "
             "x: log ttfr ms ->)"]
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    lines.extend(legend)
    return "\n".join(lines)


def main(argv=None):
    """CLI: ``python -m repro.experiments.startup_frontier [--smoke]``.

    ``--smoke`` runs a two-benchmark serial sweep and prints ``smoke ok``
    — the tier-1 gate that keeps the experiment exercised on every run.
    """
    import argparse
    from repro.experiments.common import ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="minimal sweep + invariant checks")
    parser.add_argument("--size", default=None,
                        help=f"input size (default: ${SIZE_ENV} or M)")
    args = parser.parse_args(argv)
    if args.smoke:
        ctx = ExperimentContext(repetitions=1, quick=True, jobs=1)
        benchmarks = [b for b in ctx.benchmarks()
                      if b.name in ("atax", "SHA")]
        ctx.benchmarks = lambda: benchmarks
        result = startup_frontier(ctx, size=args.size or "S")
        browsers = [h for h, e in result["data"].items()
                    if e["kind"] == "browser"]
        standalone = [h for h, e in result["data"].items()
                      if e["kind"] == "standalone"]
        assert len(browsers) >= 3, browsers
        assert len(standalone) >= 2, standalone
        policies = next(iter(result["data"].values()))["policies"]
        assert len(policies) >= 4, list(policies)
        print(f"frontier: {len(result['data'])} hosts x "
              f"{len(policies)} policies over "
              f"{len(result['benchmarks'])} benchmark(s)")
        print("smoke ok")
        return 0
    ctx = ExperimentContext()
    result = startup_frontier(ctx, size=args.size)
    print(result["text"])
    report = ctx.failure_report()
    if report:
        print(report)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
