"""E7 (§4.4.2, Table 7): Wasm two-tier compilers on Chrome vs Firefox.

Three settings per browser: basic tier only (LiftOff / Baseline),
optimizing tier only (TurboFan / Ion), and the default (both).  Numbers are
execution-speed ratios of the default setting to each single-tier setting.
"""

from __future__ import annotations

from repro.analysis import arithmetic_mean, format_table, geomean
from repro.env import DESKTOP, chrome_desktop, firefox_desktop


def _tier_ratios(ctx, benchmark, profile, size):
    default_runner = ctx.runner(profile, DESKTOP)
    basic_runner = ctx.runner(profile.with_wasm(optimizing_enabled=False),
                              DESKTOP)
    opt_runner = ctx.runner(profile.with_wasm(basic_enabled=False), DESKTOP)
    artifact = ctx.wasm(benchmark, size)
    default_ms = default_runner.run_wasm(artifact).time_ms
    basic_ms = basic_runner.run_wasm(artifact).time_ms
    opt_ms = opt_runner.run_wasm(artifact).time_ms
    # Speed ratio of default to single-tier: >1 means default faster.
    return {
        "suite": benchmark.suite,
        "vs_basic": basic_ms / default_ms,
        "vs_opt": opt_ms / default_ms,
    }


def _tier_benchmark(ctx, benchmark, size):
    return {
        "chrome": _tier_ratios(ctx, benchmark, chrome_desktop(), size),
        "firefox": _tier_ratios(ctx, benchmark, firefox_desktop(), size),
    }


def table7_tier_comparison(ctx, size="M"):
    chrome = {}
    firefox = {}
    for benchmark, entry in ctx.map_benchmarks(_tier_benchmark, size=size):
        chrome[benchmark.name] = entry["chrome"]
        firefox[benchmark.name] = entry["firefox"]
    data = {"chrome": chrome, "firefox": firefox}

    def agg(results, suite, key):
        values = [e[key] for e in results.values()
                  if suite in (None, e["suite"])]
        return geomean(values), arithmetic_mean(values)

    rows = []
    summary = {}
    for suite_label, suite in (("PolyBenchC", "PolyBenchC"),
                               ("CHStone", "CHStone"),
                               ("Overall", None)):
        liftoff_g, liftoff_a = agg(chrome, suite, "vs_basic")
        baseline_g, baseline_a = agg(firefox, suite, "vs_basic")
        turbofan_g, turbofan_a = agg(chrome, suite, "vs_opt")
        ion_g, ion_a = agg(firefox, suite, "vs_opt")
        summary[suite_label] = {
            "LiftOff": liftoff_g, "Baseline": baseline_g,
            "TurboFan": turbofan_g, "Ion": ion_g}
        rows.append([suite_label, "Geo. mean", liftoff_g, baseline_g,
                     turbofan_g, ion_g])
        rows.append([suite_label, "Average", liftoff_a, baseline_a,
                     turbofan_a, ion_a])
    text = format_table(
        ["Benchmark", "Metric", "LiftOff", "Baseline", "TurboFan", "Ion"],
        rows,
        title="Table 7: Wasm speed ratio of default setting to "
              "basic-only (LiftOff/Baseline) and optimizing-only "
              "(TurboFan/Ion)")
    return {"data": data, "summary": summary, "text": text}
