"""E1/E2: impact of compiler optimization levels (Fig. 5, Fig. 6, Table 2).

41 benchmarks × {-O1, -O2, -Ofast, -Oz}, measured as ratios to the -O2
baseline, for the Wasm and genericjs targets on desktop Chrome and for the
x86 control toolchain.
"""

from __future__ import annotations

from repro.analysis import format_table, geomean
from repro.cache import cached_result
from repro.env import DESKTOP, chrome_desktop
from repro.native import execute_program

LEVELS = ("O1", "O2", "Ofast", "Oz")
RATIO_LEVELS = ("O1", "Ofast", "Oz")


def _ratios(per_level):
    """{level: value} → {f"{lvl}/O2": ratio} against the O2 baseline."""
    base = per_level["O2"]
    return {f"{lvl}/O2": per_level[lvl] / base for lvl in RATIO_LEVELS}


def _fig5_benchmark(ctx, benchmark, size):
    """Per-benchmark worker: the full level sweep for both targets."""
    runner = ctx.runner(chrome_desktop(), DESKTOP)
    entry = {}
    for target in ("wasm", "js"):
        times = {}
        sizes = {}
        memories = {}
        for level in LEVELS:
            if target == "wasm":
                artifact = ctx.wasm(benchmark, size, level)
                measurement = runner.run_wasm(artifact)
            else:
                artifact = ctx.js(benchmark, size, level)
                measurement = runner.run_js(artifact)
            times[level] = measurement.time_ms
            sizes[level] = artifact.code_size
            memories[level] = measurement.memory_kb
        entry[target] = {
            "time": _ratios(times),
            "code_size": _ratios(sizes),
            "memory": _ratios(memories),
            "raw_time_ms": times,
        }
    return entry


def figure5_opt_levels(ctx, size="M"):
    """Fig. 5: per-benchmark execution time and code size across levels,
    Wasm and JS targets, Chrome v79 desktop, default (M) input."""
    data = {"wasm": {}, "js": {}}
    for benchmark, entry in ctx.map_benchmarks(_fig5_benchmark, size=size):
        data["wasm"][benchmark.name] = entry["wasm"]
        data["js"][benchmark.name] = entry["js"]
    return {"data": data, "text": _render_fig5(data)}


def _fig6_benchmark(ctx, benchmark, size):
    times = {}
    sizes = {}
    for level in LEVELS:
        artifact = ctx.x86(benchmark, size, level)
        times[level] = cached_result(
            "measure-x86", (artifact.cache_key,),
            lambda: execute_program(artifact.program, "main")[1].cycles)
        sizes[level] = artifact.code_size
    return {"time": _ratios(times), "code_size": _ratios(sizes),
            "raw_cycles": times}


def figure6_opt_levels_x86(ctx, size="M"):
    """Fig. 6: the same sweep for the LLVM-x86 control toolchain."""
    data = {}
    for benchmark, entry in ctx.map_benchmarks(_fig6_benchmark, size=size):
        data[benchmark.name] = entry
    return {"data": data, "text": _render_fig6(data)}


def table2_summary(ctx, size="M", fig5=None, fig6=None):
    """Table 2: geometric means of the level/O2 ratios for JS, Wasm, x86."""
    fig5 = fig5 or figure5_opt_levels(ctx, size)
    fig6 = fig6 or figure6_opt_levels_x86(ctx, size)
    rows = []
    summary = {}
    for metric, key in (("Exec. Time", "time"), ("Code Size", "code_size"),
                        ("Memory", "memory")):
        for level in RATIO_LEVELS:
            label = f"{level}/O2"
            js_values = [entry[key][label]
                         for entry in fig5["data"]["js"].values()
                         if key in entry]
            wasm_values = [entry[key][label]
                           for entry in fig5["data"]["wasm"].values()
                           if key in entry]
            if key != "memory":
                x86_values = [entry[key][label]
                              for entry in fig6["data"].values()]
                x86_g = geomean(x86_values)
            else:
                x86_g = None
            js_g = geomean(js_values)
            wasm_g = geomean(wasm_values)
            summary[(metric, label)] = {"js": js_g, "wasm": wasm_g,
                                        "x86": x86_g}
            rows.append([metric, label, js_g, wasm_g, x86_g])
    text = format_table(["Metrics", "Targets", "JS", "WASM", "x86"], rows,
                        title="Table 2: geometric means of compiler "
                              "optimization results (vs -O2)")
    return {"data": summary, "text": text,
            "fig5": fig5, "fig6": fig6}


def _render_fig5(data):
    lines = ["Figure 5: exec time / code size vs -O2 (Wasm & JS, Chrome)"]
    headers = ["benchmark",
               "wasm t O1", "wasm t Ofast", "wasm t Oz",
               "js t O1", "js t Ofast", "js t Oz",
               "wasm cs Oz", "js cs Oz"]
    rows = []
    for name in data["wasm"]:
        wasm_entry = data["wasm"][name]
        js_entry = data["js"][name]
        rows.append([
            name,
            wasm_entry["time"]["O1/O2"], wasm_entry["time"]["Ofast/O2"],
            wasm_entry["time"]["Oz/O2"],
            js_entry["time"]["O1/O2"], js_entry["time"]["Ofast/O2"],
            js_entry["time"]["Oz/O2"],
            wasm_entry["code_size"]["Oz/O2"],
            js_entry["code_size"]["Oz/O2"],
        ])
    lines.append(format_table(headers, rows))
    return "\n".join(lines)


def _render_fig6(data):
    headers = ["benchmark", "t O1/O2", "t Ofast/O2", "t Oz/O2",
               "cs O1/O2", "cs Ofast/O2", "cs Oz/O2"]
    rows = []
    for name, entry in data.items():
        rows.append([name,
                     entry["time"]["O1/O2"], entry["time"]["Ofast/O2"],
                     entry["time"]["Oz/O2"],
                     entry["code_size"]["O1/O2"],
                     entry["code_size"]["Ofast/O2"],
                     entry["code_size"]["Oz/O2"]])
    return format_table(headers, rows,
                        title="Figure 6: x86 exec time / code size vs -O2")
