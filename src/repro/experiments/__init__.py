"""Experiment entry points — one per table/figure of the paper.

Every function returns a dict with at least ``data`` (structured results)
and ``text`` (rendered tables in the paper's layout).  See DESIGN.md's
per-experiment index (E1–E13) and EXPERIMENTS.md for paper-vs-measured
records.
"""

from repro.experiments.common import ExperimentContext
from repro.experiments.opt_levels import (
    figure5_opt_levels,
    figure6_opt_levels_x86,
    table2_summary,
)
from repro.experiments.compiler_compare import compare_cheerp_emscripten
from repro.experiments.input_sizes import (
    figure9_input_sizes,
    input_size_tables,
)
from repro.experiments.jit import figure10_jit_improvement
from repro.experiments.jit_tiers import table7_tier_comparison
from repro.experiments.browsers import table8_browsers_platforms
from repro.experiments.context_switch import context_switch_overhead
from repro.experiments.manual_js import table9_manual_js
from repro.experiments.realworld import table10_realworld, table12_longjs_ops
from repro.experiments.opt_level_stats import figure11_five_number
from repro.experiments.chrome_flags import table11_chrome_flags
from repro.experiments.startup_frontier import startup_frontier

__all__ = [
    "ExperimentContext",
    "compare_cheerp_emscripten",
    "context_switch_overhead",
    "figure10_jit_improvement",
    "figure11_five_number",
    "figure5_opt_levels",
    "figure6_opt_levels_x86",
    "figure9_input_sizes",
    "input_size_tables",
    "startup_frontier",
    "table10_realworld",
    "table11_chrome_flags",
    "table12_longjs_ops",
    "table2_summary",
    "table7_tier_comparison",
    "table8_browsers_platforms",
    "table9_manual_js",
]
