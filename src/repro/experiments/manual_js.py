"""E10 (§4.6.1, Table 9): manually-written JavaScript vs Cheerp-generated
JavaScript and WebAssembly, desktop Chrome, default (M) input."""

from __future__ import annotations

from repro.analysis import format_table
from repro.env import DESKTOP, chrome_desktop
from repro.harness import install_c_host
from repro.jsengine import JsEngine
from repro.manualjs import manual_programs
from repro.suites import get_benchmark


def _run_manual(program, profile, platform):
    engine = JsEngine(profile.js, cycles_per_ms=platform.cycles_per_ms)
    install_c_host(engine, [])
    engine.load_script(program.source)
    result = engine.call_global(program.entry)
    return {
        "ms": platform.ms(engine.total_cycles() +
                          profile.page_overhead_cycles),
        "kb": engine.heap.devtools_bytes() / 1024.0,
        "result": result,
        "loc": program.source.count("\n") + 1,
    }


def table9_manual_js(ctx, size="M"):
    profile = chrome_desktop()
    runner = ctx.runner(profile, DESKTOP)
    rows = []
    data = {}
    for program in manual_programs():
        benchmark = get_benchmark(program.benchmark)
        manual = _run_manual(program, profile, DESKTOP)
        cheerp_js = runner.run_js(ctx.js(benchmark, size))
        wasm = runner.run_wasm(ctx.wasm(benchmark, size))
        data[program.name] = {
            "suite": program.suite,
            "library": program.library,
            "loc": manual["loc"],
            "manual_ms": manual["ms"],
            "cheerp_ms": cheerp_js.time_ms,
            "wasm_ms": wasm.time_ms,
            "manual_kb": manual["kb"],
            "cheerp_kb": cheerp_js.memory_kb,
            "wasm_kb": wasm.memory_kb,
        }
        rows.append([program.name, program.library, manual["loc"],
                     manual["ms"], cheerp_js.time_ms, wasm.time_ms,
                     manual["kb"], cheerp_js.memory_kb, wasm.memory_kb])
    text = format_table(
        ["Benchmark", "Library", "LOC", "Manual ms", "Cheerp ms",
         "WASM ms", "Manual KB", "Cheerp KB", "WASM KB"], rows,
        title="Table 9: manually-written JavaScript programs")
    return {"data": data, "text": text}
