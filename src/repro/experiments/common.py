"""Shared experiment infrastructure: cached compiles, runner helpers, the
parallel scheduler wiring, and the benchmark selections.

Compiles are served by the persistent content-addressed cache
(:mod:`repro.cache`) — the context no longer carries ad-hoc per-kind dict
caches; the cache's memory layer covers the in-process case and its disk
layer makes repeat runs of the whole apparatus near-instant.
"""

from __future__ import annotations

import os
from functools import partial

from repro.compilers import CheerpCompiler, EmscriptenCompiler, LlvmX86Compiler
from repro.env import DESKTOP, MOBILE, chrome_desktop
from repro.errors import SweepError
from repro.harness import PageRunner
from repro.harness.parallel import (
    default_cell_timeout, default_jobs, default_retries, run_sweep,
)
from repro.obs import TraceContext, trace_enabled
from repro.suites import all_benchmarks

#: Environment variable: set to run experiments on a representative subset
#: (used for quick CI runs; the full suite is the default).
QUICK_ENV = "REPRO_QUICK"

#: Representative subset (one per kernel family) for quick runs.
QUICK_SET = [
    "covariance", "gemm", "3mm", "atax", "cholesky", "lu", "trisolv",
    "floyd-warshall", "jacobi-2d", "heat-3d",
    "ADPCM", "AES", "SHA", "DFADD", "MIPS",
]

#: Worker-process context registry: one reconstructed context per spec, so
#: a pool worker builds its compilers once and reuses them across tasks.
_WORKER_CONTEXTS = {}


def health_lines():
    """Cache and scheduler health summarised from the metrics registry
    (``cache.*`` / ``sched.*`` counters), as report-ready text lines."""
    from repro.obs import SCHED, get_registry
    metrics = get_registry().export([SCHED])
    cache = {k.split(".", 1)[1]: v for k, v in metrics.items()
             if k.startswith("cache.")}
    sched = {k.split(".", 1)[1]: v for k, v in metrics.items()
             if k.startswith("sched.")}
    lines = []
    if cache:
        lines.append(
            "cache health: {hits} hit(s) ({memory} memory / {disk} disk), "
            "{misses} miss(es), {stale} stale, {puts} write(s)".format(
                hits=cache.get("hits", 0),
                memory=cache.get("memory_hits", 0),
                disk=cache.get("disk_hits", 0),
                misses=cache.get("misses", 0),
                stale=cache.get("stale", 0),
                puts=cache.get("puts", 0)))
    if sched:
        lines.append(
            "scheduler health: {cells} cell(s), {completed} completed, "
            "{failures} failed, {retries} retried attempt(s), "
            "{timeouts} timeout(s), {lost} lost worker(s)".format(
                cells=sched.get("cells", 0),
                completed=sched.get("completed", 0),
                failures=sched.get("failures", 0),
                retries=sched.get("retries", 0),
                timeouts=sched.get("timeouts", 0),
                lost=sched.get("lost", 0)))
    return lines


def _run_benchmark_task(worker, spec, params, benchmark):
    """Pool entry point: reconstruct the context (once per worker per
    spec) and apply ``worker(ctx, benchmark, **params)``."""
    ctx = _WORKER_CONTEXTS.get(spec)
    if ctx is None:
        quick, repetitions, heap_bytes = spec
        ctx = ExperimentContext(repetitions=repetitions, quick=quick,
                                heap_bytes=heap_bytes, jobs=1)
        _WORKER_CONTEXTS[spec] = ctx
    return worker(ctx, benchmark, **dict(params))


class ExperimentContext:
    """Configuration shared by experiment functions.

    The Cheerp heap is left at 2 MiB for the benchmark pages (the paper
    raises Cheerp's limits with ``-cheerp-linear-heap-size`` where needed,
    §3.2); repetitions default to the paper's five.  ``jobs`` selects the
    parallel scheduler's worker count (default: ``REPRO_JOBS`` or the CPU
    count; 1 = serial).  ``retries``/``cell_timeout``/``fault_plan``
    configure the scheduler's fault tolerance (defaults from
    ``REPRO_RETRIES``, ``REPRO_CELL_TIMEOUT``, ``REPRO_FAULT_INJECT``);
    failed cells accumulate as :class:`~repro.harness.CellFailure`
    records in ``self.failures`` instead of aborting the sweep.
    """

    def __init__(self, repetitions=None, quick=None,
                 heap_bytes=2 * 1024 * 1024, jobs=None, retries=None,
                 cell_timeout=None, fault_plan=None):
        if quick is None:
            quick = bool(os.environ.get(QUICK_ENV))
        self.quick = quick
        self.repetitions = repetitions if repetitions is not None else \
            (2 if quick else 5)
        self.heap_bytes = heap_bytes
        self.jobs = jobs if jobs is not None else default_jobs()
        self.retries = retries if retries is not None else default_retries()
        self.cell_timeout = cell_timeout if cell_timeout is not None else \
            default_cell_timeout()
        self.fault_plan = fault_plan   # None -> REPRO_FAULT_INJECT
        self.failures = []
        self.cheerp = CheerpCompiler(linear_heap_size=heap_bytes)
        self.emscripten = EmscriptenCompiler()
        self.llvm_x86 = LlvmX86Compiler()

    def benchmarks(self):
        benchmarks = all_benchmarks()
        if self.quick:
            benchmarks = [b for b in benchmarks if b.name in QUICK_SET]
        return benchmarks

    # -- cached compiles (served by repro.cache) ------------------------------

    def wasm(self, benchmark, size="M", opt_level="O2", toolchain=None):
        toolchain = toolchain or self.cheerp
        return toolchain.compile_wasm(benchmark.source,
                                      benchmark.defines(size), opt_level,
                                      benchmark.name)

    def js(self, benchmark, size="M", opt_level="O2"):
        return self.cheerp.compile_js(benchmark.source,
                                      benchmark.defines(size), opt_level,
                                      benchmark.name)

    def x86(self, benchmark, size="M", opt_level="O2"):
        return self.llvm_x86.compile(benchmark.source,
                                     benchmark.defines(size), opt_level,
                                     benchmark.name)

    # -- parallel scheduling --------------------------------------------------

    def map_benchmarks(self, worker, **params):
        """Apply ``worker(ctx, benchmark, **params)`` to every benchmark,
        fanned out across ``self.jobs`` processes, and return
        ``[(benchmark, result), ...]`` in benchmark order — identical to
        what a serial loop would produce.

        Fault-tolerant: a cell that exhausts its retries is dropped from
        the returned pairs (the sweep degrades to the surviving subset,
        still in input order) and its :class:`~repro.harness.CellFailure`
        is appended to ``self.failures`` tagged with the experiment worker
        name.  Only a *total* failure — every cell failed — raises
        :class:`~repro.errors.SweepError` (which still carries the empty
        partial results and the failure report).

        ``worker`` must be a module-level function and ``params`` values
        picklable.  The worker receives an equivalent context (same quick /
        repetitions / heap configuration) reconstructed in its process; the
        benchmark list itself is always taken from *this* context, so
        subset overrides made by callers are honored.
        """
        benchmarks = list(self.benchmarks())
        spec = (self.quick, self.repetitions, self.heap_bytes)
        fn = partial(_run_benchmark_task, worker, spec,
                     tuple(sorted(params.items())))
        # With REPRO_TRACE=1 the sweep runs under one deterministic
        # trace per experiment call: ids derive from the worker name and
        # benchmark list, each cell a ("cell", name) child shipped to
        # its worker process (attempt and engine-phase spans land in the
        # event sink).  Off by default — untraced runs carry no context.
        traces = None
        if trace_enabled():
            experiment = getattr(worker, "__name__", str(worker))
            root = TraceContext.root(
                "experiment", experiment,
                tuple(sorted(params.items())),
                *(b.name for b in benchmarks))
            traces = [root.child("cell", b.name) for b in benchmarks]
        sweep = run_sweep(fn, benchmarks, jobs=self.jobs,
                          retries=self.retries, timeout=self.cell_timeout,
                          labels=[b.name for b in benchmarks],
                          fault_plan=self.fault_plan, traces=traces)
        if sweep.failures:
            experiment = getattr(worker, "__name__", str(worker))
            for failure in sweep.failures:
                failure.context.setdefault("experiment", experiment)
                failure.context.setdefault("params", dict(params))
            self.failures.extend(sweep.failures)
            if len(sweep.failures) == len(benchmarks):
                raise SweepError(sweep)
        failed = sweep.failed_indices()
        return [(benchmark, value)
                for index, (benchmark, value)
                in enumerate(zip(benchmarks, sweep.values))
                if index not in failed]

    def failure_report(self):
        """Text report of every failed cell accumulated by this context's
        sweeps, followed by the cache/scheduler health counters from the
        metrics registry; empty string when everything succeeded."""
        if not self.failures:
            return ""
        lines = [f"{len(self.failures)} failed sweep cell(s):"]
        lines.extend("  " + failure.describe() for failure in self.failures)
        health = health_lines()
        if health:
            lines.append("")
            lines.extend(health)
        return "\n".join(lines)

    # -- runners ---------------------------------------------------------------

    def runner(self, profile=None, platform=None, flags=None):
        return PageRunner(profile or chrome_desktop(),
                          platform or DESKTOP, flags=flags,
                          repetitions=self.repetitions)
