"""Shared experiment infrastructure: compile caching, runner helpers, and
the benchmark selections."""

from __future__ import annotations

import os

from repro.compilers import CheerpCompiler, EmscriptenCompiler, LlvmX86Compiler
from repro.env import DESKTOP, MOBILE, chrome_desktop
from repro.harness import PageRunner
from repro.suites import all_benchmarks

#: Environment variable: set to run experiments on a representative subset
#: (used for quick CI runs; the full suite is the default).
QUICK_ENV = "REPRO_QUICK"

#: Representative subset (one per kernel family) for quick runs.
QUICK_SET = [
    "covariance", "gemm", "3mm", "atax", "cholesky", "lu", "trisolv",
    "floyd-warshall", "jacobi-2d", "heat-3d",
    "ADPCM", "AES", "SHA", "DFADD", "MIPS",
]


class ExperimentContext:
    """Configuration + caches shared by experiment functions.

    The Cheerp heap is left at 2 MiB for the benchmark pages (the paper
    raises Cheerp's limits with ``-cheerp-linear-heap-size`` where needed,
    §3.2); repetitions default to the paper's five.
    """

    def __init__(self, repetitions=None, quick=None, heap_bytes=2 * 1024 * 1024):
        if quick is None:
            quick = bool(os.environ.get(QUICK_ENV))
        self.quick = quick
        self.repetitions = repetitions if repetitions is not None else \
            (2 if quick else 5)
        self.cheerp = CheerpCompiler(linear_heap_size=heap_bytes)
        self.emscripten = EmscriptenCompiler()
        self.llvm_x86 = LlvmX86Compiler()
        self._wasm_cache = {}
        self._js_cache = {}
        self._x86_cache = {}

    def benchmarks(self):
        benchmarks = all_benchmarks()
        if self.quick:
            benchmarks = [b for b in benchmarks if b.name in QUICK_SET]
        return benchmarks

    # -- cached compiles -----------------------------------------------------

    def wasm(self, benchmark, size="M", opt_level="O2", toolchain=None):
        toolchain = toolchain or self.cheerp
        key = (benchmark.name, size, opt_level, toolchain.name)
        if key not in self._wasm_cache:
            self._wasm_cache[key] = toolchain.compile_wasm(
                benchmark.source, benchmark.defines(size), opt_level,
                benchmark.name)
        return self._wasm_cache[key]

    def js(self, benchmark, size="M", opt_level="O2"):
        key = (benchmark.name, size, opt_level)
        if key not in self._js_cache:
            self._js_cache[key] = self.cheerp.compile_js(
                benchmark.source, benchmark.defines(size), opt_level,
                benchmark.name)
        return self._js_cache[key]

    def x86(self, benchmark, size="M", opt_level="O2"):
        key = (benchmark.name, size, opt_level)
        if key not in self._x86_cache:
            self._x86_cache[key] = self.llvm_x86.compile(
                benchmark.source, benchmark.defines(size), opt_level,
                benchmark.name)
        return self._x86_cache[key]

    # -- runners ---------------------------------------------------------------

    def runner(self, profile=None, platform=None, flags=None):
        return PageRunner(profile or chrome_desktop(),
                          platform or DESKTOP, flags=flags,
                          repetitions=self.repetitions)
