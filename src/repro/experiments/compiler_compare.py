"""E3 (§4.2.2): Cheerp vs Emscripten, -O2, desktop Chrome, M inputs.

The paper: Emscripten-compiled Wasm runs 2.70× faster (geomean) but uses
6.02× more memory, because of the 64 KiB vs 16 MiB memory-growth granule
and backend quality."""

from __future__ import annotations

from repro.analysis import format_table, geomean
from repro.env import DESKTOP, chrome_desktop


def _compare_benchmark(ctx, benchmark, size):
    runner = ctx.runner(chrome_desktop(), DESKTOP)
    cheerp_m = runner.run_wasm(ctx.wasm(benchmark, size,
                                        toolchain=ctx.cheerp))
    emcc_m = runner.run_wasm(ctx.wasm(benchmark, size,
                                      toolchain=ctx.emscripten))
    speedup = cheerp_m.time_ms / emcc_m.time_ms
    mem_ratio = emcc_m.memory_kb / cheerp_m.memory_kb
    return {
        "cheerp_ms": cheerp_m.time_ms, "emcc_ms": emcc_m.time_ms,
        "cheerp_kb": cheerp_m.memory_kb, "emcc_kb": emcc_m.memory_kb,
        "speedup": speedup, "memory_ratio": mem_ratio,
        "cheerp_grows": cheerp_m.detail.get("memory_grows"),
        "emcc_grows": emcc_m.detail.get("memory_grows"),
    }


def compare_cheerp_emscripten(ctx, size="M"):
    rows = []
    speedups = []
    memory_ratios = []
    per_benchmark = {}
    for benchmark, entry in ctx.map_benchmarks(_compare_benchmark,
                                               size=size):
        speedups.append(entry["speedup"])
        memory_ratios.append(entry["memory_ratio"])
        per_benchmark[benchmark.name] = entry
        rows.append([benchmark.name, entry["cheerp_ms"], entry["emcc_ms"],
                     entry["speedup"], entry["memory_ratio"]])
    summary = {"speedup_gmean": geomean(speedups),
               "memory_gmean": geomean(memory_ratios)}
    text = format_table(
        ["benchmark", "cheerp ms", "emscripten ms", "emcc speedup",
         "emcc mem ratio"], rows,
        title="§4.2.2: Cheerp vs Emscripten (-O2, Chrome desktop)")
    text += (f"\n\nGeomean: Emscripten {summary['speedup_gmean']:.2f}x "
             f"faster, {summary['memory_gmean']:.2f}x more memory "
             "(paper: 2.70x faster, 6.02x more memory)")
    return {"data": per_benchmark, "summary": summary, "text": text}
