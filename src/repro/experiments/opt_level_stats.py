"""E12 (Appendix B, Fig. 11): five-number summaries of the optimization-
level results."""

from __future__ import annotations

from repro.analysis import five_number_summary, format_table
from repro.experiments.opt_levels import (
    RATIO_LEVELS, figure5_opt_levels, figure6_opt_levels_x86,
)


def figure11_five_number(ctx, size="M", fig5=None, fig6=None):
    fig5 = fig5 or figure5_opt_levels(ctx, size)
    fig6 = fig6 or figure6_opt_levels_x86(ctx, size)
    summaries = {}
    rows = []
    for target, source, metrics in (
            ("JS", fig5["data"]["js"], ("time", "code_size", "memory")),
            ("WASM", fig5["data"]["wasm"], ("time", "code_size", "memory")),
            ("x86", fig6["data"], ("time", "code_size"))):
        for metric in metrics:
            for level in RATIO_LEVELS:
                label = f"{level}/O2"
                values = [entry[metric][label] for entry in source.values()]
                summary = five_number_summary(values)
                summaries[(target, metric, label)] = summary
                rows.append([target, metric, label, summary.minimum,
                             summary.q1, summary.median, summary.q3,
                             summary.maximum])
    text = format_table(
        ["target", "metric", "ratio", "min", "q1", "median", "q3", "max"],
        rows, title="Figure 11: five-number summaries vs -O2")
    return {"data": summaries, "text": text, "fig5": fig5, "fig6": fig6}
