"""E13 (Appendix A, Table 11): the Chrome parameters used per experiment,
reconstructed from :class:`repro.env.flags.ChromeFlags`."""

from __future__ import annotations

from repro.analysis import format_table
from repro.env import ChromeFlags

_CONFIGS = [
    ("Sec. 4.2", "Figure 5, 6 / Table 2", "chrome.exe --incognito",
     "Prevent the browser from caching the benchmark."),
    ("Sec. 4.3", "Figure 9 / Table 3-6", "chrome.exe --incognito",
     "Prevent the browser from caching the benchmark."),
    ("Sec. 4.4", "Figure 10 / Table 7", "chrome.exe --incognito",
     "Default: both LiftOff and TurboFan enabled."),
    ("Sec. 4.4", "Figure 10",
     'chrome.exe --js-flags="--no-opt" --incognito',
     "LiftOff-equivalent only for JavaScript benchmarks."),
    ("Sec. 4.4", "Figure 10 / Table 7",
     'chrome.exe --js-flags="--liftoff --no-wasm-tier-up" --incognito',
     "LiftOff compiler only for WebAssembly benchmarks."),
    ("Sec. 4.4", "Table 7",
     'chrome.exe --js-flags="--no-liftoff --no-wasm-tier-up" --incognito',
     "TurboFan compiler only for WebAssembly benchmarks."),
    ("Sec. 4.5", "Figure 11, 12 / Table 8", "chrome.exe --incognito",
     "Prevent the browser from caching the benchmark."),
    ("Sec. 4.6", "Table 9, 10, 11", "chrome.exe --incognito",
     "Prevent the browser from caching the benchmark."),
]


def table11_chrome_flags():
    rows = []
    parsed = []
    for section, figures, command, impact in _CONFIGS:
        flags = ChromeFlags.parse(command)
        parsed.append((section, figures, flags))
        rows.append([section, figures, command, impact])
    text = format_table(["Section", "Figures/Tables", "Parameter",
                         "Impact"], rows,
                        title="Table 11: Google Chrome parameters")
    return {"data": parsed, "text": text}
