"""E8 (§4.5, Figs. 12–13, Table 8): browsers × platforms.

41 benchmarks at -O2, default input, in six deployment settings: desktop
and mobile Chrome/Firefox/Edge."""

from __future__ import annotations

from repro.analysis import arithmetic_mean, format_table
from repro.env import (
    DESKTOP, MOBILE,
    chrome_desktop, chrome_mobile, edge_desktop, edge_mobile,
    firefox_desktop, firefox_mobile,
)

SETTINGS = (
    ("chrome", "desktop", chrome_desktop, DESKTOP),
    ("firefox", "desktop", firefox_desktop, DESKTOP),
    ("edge", "desktop", edge_desktop, DESKTOP),
    ("chrome", "mobile", chrome_mobile, MOBILE),
    ("firefox", "mobile", firefox_mobile, MOBILE),
    ("edge", "mobile", edge_mobile, MOBILE),
)


def _settings_benchmark(ctx, benchmark, size):
    """Per-benchmark worker: measure all six deployment settings."""
    out = {}
    for browser, platform_kind, profile_fn, platform in SETTINGS:
        runner = ctx.runner(profile_fn(), platform)
        wasm_m = runner.run_wasm(ctx.wasm(benchmark, size))
        js_m = runner.run_js(ctx.js(benchmark, size))
        out[(browser, platform_kind)] = {
            "js_ms": js_m.time_ms, "wasm_ms": wasm_m.time_ms,
            "js_kb": js_m.memory_kb, "wasm_kb": wasm_m.memory_kb}
    return out


def table8_browsers_platforms(ctx, size="M"):
    per_benchmark_settings = ctx.map_benchmarks(_settings_benchmark,
                                                size=size)
    data = {}
    for browser, platform_kind, _profile_fn, _platform in SETTINGS:
        setting = (browser, platform_kind)
        per_benchmark = {
            benchmark.name: cells[setting]
            for benchmark, cells in per_benchmark_settings}
        entries = list(per_benchmark.values())
        data[setting] = {
            "js_ms": arithmetic_mean([e["js_ms"] for e in entries]),
            "wasm_ms": arithmetic_mean([e["wasm_ms"] for e in entries]),
            "js_kb": arithmetic_mean([e["js_kb"] for e in entries]),
            "wasm_kb": arithmetic_mean([e["wasm_kb"] for e in entries]),
            "per_benchmark": per_benchmark,
        }

    def row(metric, kind):
        return [data[(browser, kind)][metric]
                for browser in ("chrome", "firefox", "edge")]

    rows = [
        ["D. Exec. Time (ms)"] + row("js_ms", "desktop")
        + row("wasm_ms", "desktop"),
        ["M. Exec. Time (ms)"] + row("js_ms", "mobile")
        + row("wasm_ms", "mobile"),
        ["D. Memory (KB)"] + row("js_kb", "desktop")
        + row("wasm_kb", "desktop"),
        ["M. Memory (KB)"] + row("js_kb", "mobile")
        + row("wasm_kb", "mobile"),
    ]
    text = format_table(
        ["", "JS Chrome", "JS Firefox", "JS Edge",
         "WASM Chrome", "WASM Firefox", "WASM Edge"], rows,
        title="Table 8: average execution time and memory "
              "(Figs. 12/13 data)")
    return {"data": data, "text": text}
