"""E8 (§4.5, Figs. 12–13, Table 8): browsers × platforms.

41 benchmarks at -O2, default input, in six deployment settings: desktop
and mobile Chrome/Firefox/Edge."""

from __future__ import annotations

from repro.analysis import arithmetic_mean, format_table
from repro.env import (
    DESKTOP, MOBILE,
    chrome_desktop, chrome_mobile, edge_desktop, edge_mobile,
    firefox_desktop, firefox_mobile,
)

SETTINGS = (
    ("chrome", "desktop", chrome_desktop, DESKTOP),
    ("firefox", "desktop", firefox_desktop, DESKTOP),
    ("edge", "desktop", edge_desktop, DESKTOP),
    ("chrome", "mobile", chrome_mobile, MOBILE),
    ("firefox", "mobile", firefox_mobile, MOBILE),
    ("edge", "mobile", edge_mobile, MOBILE),
)


def table8_browsers_platforms(ctx, size="M"):
    data = {}
    for browser, platform_kind, profile_fn, platform in SETTINGS:
        runner = ctx.runner(profile_fn(), platform)
        js_times = []
        wasm_times = []
        js_mems = []
        wasm_mems = []
        per_benchmark = {}
        for benchmark in ctx.benchmarks():
            wasm_m = runner.run_wasm(ctx.wasm(benchmark, size))
            js_m = runner.run_js(ctx.js(benchmark, size))
            js_times.append(js_m.time_ms)
            wasm_times.append(wasm_m.time_ms)
            js_mems.append(js_m.memory_kb)
            wasm_mems.append(wasm_m.memory_kb)
            per_benchmark[benchmark.name] = {
                "js_ms": js_m.time_ms, "wasm_ms": wasm_m.time_ms,
                "js_kb": js_m.memory_kb, "wasm_kb": wasm_m.memory_kb}
        data[(browser, platform_kind)] = {
            "js_ms": arithmetic_mean(js_times),
            "wasm_ms": arithmetic_mean(wasm_times),
            "js_kb": arithmetic_mean(js_mems),
            "wasm_kb": arithmetic_mean(wasm_mems),
            "per_benchmark": per_benchmark,
        }

    def row(metric, kind):
        return [data[(browser, kind)][metric]
                for browser in ("chrome", "firefox", "edge")]

    rows = [
        ["D. Exec. Time (ms)"] + row("js_ms", "desktop")
        + row("wasm_ms", "desktop"),
        ["M. Exec. Time (ms)"] + row("js_ms", "mobile")
        + row("wasm_ms", "mobile"),
        ["D. Memory (KB)"] + row("js_kb", "desktop")
        + row("wasm_kb", "desktop"),
        ["M. Memory (KB)"] + row("js_kb", "mobile")
        + row("wasm_kb", "mobile"),
    ]
    text = format_table(
        ["", "JS Chrome", "JS Firefox", "JS Edge",
         "WASM Chrome", "WASM Firefox", "WASM Edge"], rows,
        title="Table 8: average execution time and memory "
              "(Figs. 12/13 data)")
    return {"data": data, "text": text}
