"""E9 (§4.5): JS↔Wasm context-switch overhead micro-benchmark.

A Wasm module whose hot loop calls a trivial JS import; the boundary cost
dominates, exposing each browser's call overhead.  The paper: Firefox takes
only 0.13× of Chrome's time."""

from __future__ import annotations

from repro.analysis import format_table
from repro.env import DESKTOP, chrome_desktop, edge_desktop, firefox_desktop
from repro.wasm import FuncType, Function, HostImport, WasmModule, WasmVM
from repro.wasm.instructions import Op, instr as I

CALLS = 20000


def _boundary_module(calls):
    """(module (import "env" "tick") (func $pingpong ...)) — calls the JS
    import ``calls`` times."""
    module = WasmModule(name="context-switch")
    module.imports.append(
        HostImport("env", "tick", FuncType(("i32",), ("i32",))))
    body = [
        I(Op.I32_CONST, 0), I(Op.LOCAL_SET, 0),
        I(Op.BLOCK), I(Op.LOOP),
        I(Op.LOCAL_GET, 0), I(Op.I32_CONST, calls), I(Op.I32_GE_S),
        I(Op.BR_IF, 1),
        I(Op.LOCAL_GET, 0), I(Op.CALL, 0), I(Op.LOCAL_SET, 0),
        I(Op.LOCAL_GET, 0), I(Op.I32_CONST, 1), I(Op.I32_ADD),
        I(Op.LOCAL_SET, 0),
        I(Op.BR, 0),
        I(Op.END), I(Op.END),
    ]
    module.add_function(Function("pingpong", FuncType((), ()),
                                 ["i32"], body, exported=True))
    return module


def context_switch_overhead(calls=CALLS):
    module = _boundary_module(calls)
    results = {}
    for profile_fn in (chrome_desktop, firefox_desktop, edge_desktop):
        profile = profile_fn()
        vm = WasmVM(boundary_cost=profile.wasm.boundary_cost)
        instance = vm.instantiate(
            module, {("env", "tick"): lambda inst, v: v})
        instance.invoke("pingpong")
        cycles = instance.stats.cycles + instance.stats.boundary_cycles
        results[profile.name] = {
            "ms": DESKTOP.ms(cycles),
            "boundary_cycles": instance.stats.boundary_cycles,
            "host_calls": instance.stats.host_calls,
        }
    chrome_ms = results["chrome"]["ms"]
    rows = []
    for name, entry in results.items():
        entry["vs_chrome"] = entry["ms"] / chrome_ms
        rows.append([name, entry["ms"], entry["vs_chrome"]])
    text = format_table(
        ["browser", "time (ms)", "ratio vs Chrome"], rows,
        title=f"§4.5 micro-benchmark: {calls} JS↔Wasm boundary calls "
              "(paper: Firefox 0.13x of Chrome)")
    return {"data": results, "text": text}
