"""C99-conformant libm edge-case semantics (Annex F.9) for host shims.

Python's :mod:`math` raises where C's libm returns a value: ``math.pow``
raises ``ValueError`` on ``pow(0.0, -1.0)`` (C99: +inf) and on a negative
base with a fractional exponent (C99: NaN), and raises ``OverflowError``
where C99 returns ±HUGE_VAL; ``math.fmod`` raises on an infinite dividend
(C99: NaN); ``math.log`` raises on zero or negative inputs (C99: -inf /
NaN).  Every host shim that stands in for C's libm — the Wasm ``env``
imports, the x86 model's HOSTCALLs, and the JS engine's ``Math`` object
that Cheerp's genericjs output calls into — must route through these
helpers so benchmark kernels see library semantics, not Python exceptions.
"""

from __future__ import annotations

import math


def _is_odd_integer(y):
    """True when ``y`` is a finite integral float with an odd value."""
    if not math.isfinite(y) or y != math.floor(y):
        return False
    return math.fmod(abs(y), 2.0) == 1.0


def c_pow(x, y):
    """C99 ``pow`` (F.9.4.4), including the zero/negative/overflow edge
    cases Python's ``math.pow`` raises on."""
    if y == 0.0:
        return 1.0                      # pow(x, ±0) = 1, even for NaN x
    if x == 1.0:
        return 1.0                      # pow(+1, y) = 1, even for NaN y
    if math.isnan(x) or math.isnan(y):
        return math.nan
    if x == 0.0:
        odd = _is_odd_integer(y)
        if y < 0:
            # pow(±0, y<0): ±HUGE_VAL (divide-by-zero); the result is
            # negative only for a -0 base raised to an odd integer.
            if odd and math.copysign(1.0, x) < 0:
                return -math.inf
            return math.inf
        return math.copysign(0.0, x) if odd else 0.0
    try:
        return math.pow(x, y)
    except OverflowError:
        negative = x < 0 and _is_odd_integer(y)
        return -math.inf if negative else math.inf
    except ValueError:
        return math.nan                 # negative base, non-integer power


def js_pow(x, y):
    """ECMAScript ``Math.pow``: IEEE-754 ``pow`` except that a NaN
    exponent and ``(±1) ** ±Infinity`` yield NaN (Number::exponentiate)."""
    if math.isnan(y):
        return math.nan
    if abs(x) == 1.0 and math.isinf(y):
        return math.nan
    return c_pow(x, y)


def c_log(x):
    """C99 ``log``: -inf at zero, NaN below it, no exceptions."""
    if math.isnan(x):
        return math.nan
    if x == 0.0:
        return -math.inf
    if x < 0.0:
        return math.nan
    return math.log(x)


def c_fmod(x, y):
    """C99 ``fmod``: NaN for an infinite dividend or zero divisor."""
    if math.isnan(x) or math.isnan(y):
        return math.nan
    if math.isinf(x) or y == 0.0:
        return math.nan
    return math.fmod(x, y)


def c_copysign(x, y):
    """C99 ``copysign`` (F.3): |x| with y's sign bit — total, including
    NaN magnitudes and ±0 sign donors."""
    return math.copysign(x, y)


def c_exp(x):
    """C99 ``exp``: saturates to +inf instead of raising on overflow."""
    if math.isnan(x):
        return math.nan
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf
