"""Legacy setup shim so `pip install -e .` works offline (the sandbox's
setuptools predates PEP 660 editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Understanding the Performance of WebAssembly "
        "Applications' (IMC '21)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
