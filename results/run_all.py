"""Regenerate every paper table/figure; writes text reports to results/.

Deterministic engines make repetitions identical, so repetitions=2 is used
to keep wall time reasonable (the paper averaged 5 runs of noisy hardware).

Compiles are served from the persistent content-addressed cache
(``REPRO_CACHE_DIR``, default ``~/.cache/repro``): a second invocation
with a warm cache skips every frontend/IR/backend pipeline.  The
benchmark grid fans out across ``REPRO_JOBS`` worker processes (default:
CPU count; ``REPRO_JOBS=1`` forces the serial engine — output is
byte-identical either way).

``--report`` additionally enables the per-opclass profiler
(``REPRO_PROFILE=1``) and renders ``tools/report.py`` — top compile
passes by wall time, top opclasses by modeled cycles, cache/scheduler
health — to stdout and ``results/report.txt``.  ``--trace`` dumps one
benchmark's phase timeline to ``results/trace.json``.

``--cells <request.json>`` is the sweep service's reference path: read
one experiment-request payload (the same JSON ``POST /sweep`` accepts),
canonicalize it with the service's own validator, run every cell
serially in this process, and print one result line per cell to stdout.
These lines are byte-identical to the ``result`` lines the service
streams for the same request — the service's end-to-end tests and
``tools/bench_service.py`` pin that equality.

``--cells <request.json> --trace-out <trace.json>`` additionally arms
distributed tracing (``REPRO_TRACE=1``) and the event sink for the run,
opens one deterministic trace over the request, and exports the
collected span stream as Chrome Trace Event JSON (load it at
https://ui.perfetto.dev) via ``tools/trace_export.py``.  The printed
result lines then carry ``trace`` ids — use plain ``--cells`` when the
byte-identical reference stream is what you need.
"""
import json, os, time, sys

# The engines are deterministic, so measurements are content-addressable
# too: memoize them (alongside the compiled artifacts) so a warm-cache
# rerun skips both compilation and execution.  REPRO_RESULT_CACHE=0
# forces live re-measurement.
os.environ.setdefault("REPRO_RESULT_CACHE", "1")

# --report arms the per-opclass profiler for the whole run (must happen
# before any engine is constructed, including in forked workers) and
# renders tools/report.py over the collected metrics at the end.
REPORT = "--report" in sys.argv
if REPORT:
    os.environ.setdefault("REPRO_PROFILE", "1")

if "--cells" in sys.argv:
    # Service reference mode: run one canonicalized request's cells
    # serially and print the canonical JSONL result lines.
    from repro.service import canonicalize_request, direct_lines

    spec_path = sys.argv[sys.argv.index("--cells") + 1]
    with open(spec_path) as f:
        payload = json.load(f)
    request = canonicalize_request(payload)

    if "--trace-out" in sys.argv:
        # Traced reference run: arm tracing + the JSONL sink, run the
        # cells under one deterministic root context, then fold the
        # span stream into Chrome Trace Event JSON.
        import importlib.util, tempfile
        trace_out = sys.argv[sys.argv.index("--trace-out") + 1]
        fd, events_path = tempfile.mkstemp(prefix="repro-events-",
                                           suffix=".jsonl")
        os.close(fd)
        os.environ["REPRO_TRACE"] = "1"
        os.environ["REPRO_EVENTS"] = events_path
        from repro.obs import TraceContext, emit_span

        root = TraceContext.root(
            "run_all", request.client,
            *(spec.cell_key() for spec in request.cells))
        started = time.time()
        lines = direct_lines(request.cells, trace=root)
        emit_span(root, "run_all.cells", started, time.time() - started,
                  client=request.client, cells=len(request.cells))
        for line in lines:
            print(line, flush=True)
        _spec = importlib.util.spec_from_file_location(
            "repro_trace_export",
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "..", "tools", "trace_export.py"))
        _export = importlib.util.module_from_spec(_spec)
        _spec.loader.exec_module(_export)
        chrome = _export.export_file(events_path, trace_out)
        os.unlink(events_path)
        print(f"chrome trace: {len(chrome['traceEvents'])} event(s) "
              f"-> {trace_out}", flush=True)
        sys.exit(0)

    for line in direct_lines(request.cells):
        print(line, flush=True)
    sys.exit(0)

from repro.cache import get_cache
from repro.experiments import (
    ExperimentContext, figure5_opt_levels, figure6_opt_levels_x86,
    table2_summary, compare_cheerp_emscripten, figure9_input_sizes,
    input_size_tables, figure10_jit_improvement, table7_tier_comparison,
    table8_browsers_platforms, context_switch_overhead, table9_manual_js,
    table10_realworld, table12_longjs_ops, figure11_five_number,
    table11_chrome_flags, startup_frontier,
)
from repro.env import chrome_desktop, firefox_desktop

out_dir = "results"

if "--trace" in sys.argv:
    # Structured-trace mode: run one benchmark on both targets with the
    # engine core's execution trace enabled and dump the phase timelines
    # (decode/parse/compile/tier-up/execute/gc/host-call spans, in cycles)
    # to results/trace.json.  Trace runs bypass result memoization.
    from repro.env import DESKTOP
    from repro.harness import PageRunner

    ctx = ExperimentContext(repetitions=1, quick=True)
    bench = next(b for b in ctx.benchmarks() if b.name == "gemm")
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=1,
                        trace=True)
    wasm_m = runner.run_wasm(ctx.wasm(bench))
    js_m = runner.run_js(ctx.js(bench))
    payload = {
        "benchmark": bench.name,
        "browser": wasm_m.browser,
        "platform": wasm_m.platform,
        "runs": {
            "wasm": {"execution_time_ms": wasm_m.time_ms,
                     "trace": wasm_m.detail["trace"]},
            "js": {"execution_time_ms": js_m.time_ms,
                   "trace": js_m.detail["trace"]},
        },
    }
    with open(f"{out_dir}/trace.json", "w") as f:
        json.dump(payload, f, indent=2)
    print(f"wasm: {len(wasm_m.detail['trace']['events'])} events, "
          f"{wasm_m.time_ms:.3f}ms")
    print(f"js:   {len(js_m.detail['trace']['events'])} events, "
          f"{js_m.time_ms:.3f}ms")
    print(f"trace timelines written to {out_dir}/trace.json")
    sys.exit(0)

ctx = ExperimentContext(repetitions=2)
summary = {}
print(f"scheduler: {ctx.jobs} job(s); compile cache at "
      f"{get_cache().root}", flush=True)

def save(name, result):
    with open(f"{out_dir}/{name}.txt", "w") as f:
        f.write(result["text"] + "\n")
    print(f"[{time.strftime('%H:%M:%S')}] {name} done", flush=True)

t0 = time.time()
fig5 = figure5_opt_levels(ctx); save("fig5_opt_levels", fig5)
fig6 = figure6_opt_levels_x86(ctx); save("fig6_opt_levels_x86", fig6)
t2 = table2_summary(ctx, fig5=fig5, fig6=fig6); save("table2_summary", t2)
summary["table2"] = {f"{m}|{l}": v for (m, l), v in t2["data"].items()}
f11 = figure11_five_number(ctx, fig5=fig5, fig6=fig6); save("fig11_five_number", f11)

e3 = compare_cheerp_emscripten(ctx); save("sec422_compilers", e3)
summary["cheerp_vs_emscripten"] = e3["summary"]

fig9c = figure9_input_sizes(ctx, chrome_desktop()); save("fig9_chrome", fig9c)
t34 = input_size_tables(ctx, "chrome", fig9=fig9c); save("tables3_4_chrome", t34)
summary["table3"] = t34["exec"]; summary["table4"] = t34["memory"]
fig9f = figure9_input_sizes(ctx, firefox_desktop()); save("fig9_firefox", fig9f)
t56 = input_size_tables(ctx, "firefox", fig9=fig9f); save("tables5_6_firefox", t56)
summary["table5"] = t56["exec"]; summary["table6"] = t56["memory"]

f10 = figure10_jit_improvement(ctx); save("fig10_jit", f10)
summary["fig10"] = {f"{t}|{s}": v for (t, s), v in f10["summary"].items()}
t7 = table7_tier_comparison(ctx); save("table7_tiers", t7)
summary["table7"] = t7["summary"]
t8 = table8_browsers_platforms(ctx); save("table8_browsers", t8)
summary["table8"] = {f"{b}|{p}": {k: v for k, v in e.items() if k != "per_benchmark"}
                     for (b, p), e in t8["data"].items()}
cs = context_switch_overhead(); save("sec45_context_switch", cs)
summary["context_switch"] = {k: v["vs_chrome"] for k, v in cs["data"].items()}
t9 = table9_manual_js(ctx); save("table9_manual_js", t9)
summary["table9"] = t9["data"]
t10 = table10_realworld(); save("table10_realworld", t10)
summary["table10"] = {
    "longjs": {k: v["ratio"] for k, v in t10["longjs"].items()},
    "hyphenopoly": {k: v["ratio"] for k, v in t10["hyphenopoly"].items()},
    "ffmpeg": t10["ffmpeg"]["ratio"],
}
t12 = table12_longjs_ops(t10["longjs"]); save("table12_longjs_ops", t12)
t11 = table11_chrome_flags(); save("table11_chrome_flags", t11)
e14 = startup_frontier(ctx); save("startup_frontier", e14)
summary["startup_frontier"] = e14["data"]

if ctx.failures:
    # Degraded sweep: record which cells failed (and why) alongside the
    # partial results instead of pretending the run was clean.
    summary["failures"] = [
        {"experiment": f.context.get("experiment", "?"),
         "benchmark": f.label, "error": f.error, "message": f.message,
         "kind": f.kind, "attempts": f.attempts}
        for f in ctx.failures]
    report = ctx.failure_report()
    with open(f"{out_dir}/failures.txt", "w") as f:
        f.write(report + "\n")
    print(report, flush=True)

# Metrics registry export, split by stability: "metrics" holds the
# deterministic counters (golden-comparable — byte-identical across
# schedules, cache warmth and interpreter tiers); "metrics_unstable"
# (cache/scheduler counters) and "metrics_wall" (wall times) are
# explicitly outside that parity contract.
from repro.obs import DET, SCHED, WALL, get_registry
registry = get_registry()
summary["metrics"] = registry.export([DET])
summary["metrics_unstable"] = registry.export([SCHED])
summary["metrics_wall"] = registry.export([WALL])

with open(f"{out_dir}/summary.json", "w") as f:
    json.dump(summary, f, indent=2, default=str)
get_cache().sweep_tmp()          # orphaned temp files from killed workers
print(f"compile cache: {get_cache().stats}", flush=True)

if REPORT:
    import importlib.util
    _spec = importlib.util.spec_from_file_location(
        "repro_report",
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "..", "tools", "report.py"))
    _report_mod = importlib.util.module_from_spec(_spec)
    _spec.loader.exec_module(_report_mod)
    report_text = _report_mod.render_report(summary)
    with open(f"{out_dir}/report.txt", "w") as f:
        f.write(report_text + "\n")
    print(report_text, flush=True)
    print(f"report written to {out_dir}/report.txt", flush=True)

print(f"ALL DONE in {time.time()-t0:.0f}s", flush=True)
if ctx.failures:
    print(f"sweep: {len(ctx.failures)} failed cell(s) — "
          f"see {out_dir}/failures.txt", flush=True)
