"""Persistent content-addressed compile cache: hits, misses, invalidation,
staleness, and disk persistence."""

import os
import pickle

import pytest

from repro import cache as cache_pkg
from repro.cache import ArtifactCache, cache_key, code_fingerprint, configure
from repro.cache.memo import RESULT_CACHE_ENV
from repro.cache.store import CACHE_VERSION
from repro.compilers import CheerpCompiler, EmscriptenCompiler, LlvmX86Compiler
from repro.env import DESKTOP, chrome_desktop, firefox_desktop
from repro.harness import PageRunner
from tests.conftest import TINY_C

OTHER_C = TINY_C.replace("s += y[i];", "s += 2.0 * y[i];")


@pytest.fixture()
def isolated_cache(tmp_path):
    """Point the process-global cache at a fresh directory; restore the
    default (env-derived) cache afterwards."""
    cache = configure(root=str(tmp_path), disk=True)
    yield cache
    configure()


def _pkl_files(cache):
    root = cache.root
    return [os.path.join(dirpath, name)
            for dirpath, _dirs, names in os.walk(root)
            for name in names if name.endswith(".pkl")]


class TestHitMiss:
    def test_second_compile_hits_memory(self, isolated_cache):
        compiler = CheerpCompiler()
        first = compiler.compile_wasm(TINY_C, name="tiny")
        second = compiler.compile_wasm(TINY_C, name="tiny")
        assert second is first
        assert isolated_cache.stats.misses == 1
        assert isolated_cache.stats.hits == 1
        assert isolated_cache.stats.memory_hits == 1

    def test_fresh_process_hits_disk(self, tmp_path):
        compiler = CheerpCompiler()
        configure(root=str(tmp_path), disk=True)
        first = compiler.compile_wasm(TINY_C, name="tiny")
        # A new ArtifactCache over the same directory models a fresh
        # process: its memory layer is empty, so the hit comes from disk.
        warm = configure(root=str(tmp_path), disk=True)
        second = compiler.compile_wasm(TINY_C, name="tiny")
        configure()
        assert warm.stats.disk_hits == 1
        assert second is not first
        assert second.binary == first.binary
        assert second.opt_level == first.opt_level

    def test_all_artifact_kinds_cached(self, isolated_cache):
        CheerpCompiler().compile_wasm(TINY_C, name="tiny")
        CheerpCompiler().compile_js(TINY_C, name="tiny")
        EmscriptenCompiler().compile_wasm(TINY_C, name="tiny")
        LlvmX86Compiler().compile(TINY_C, name="tiny")
        assert isolated_cache.stats.puts == 4
        assert isolated_cache.entry_count() == 4


class TestInvalidation:
    def test_source_change_misses(self, isolated_cache):
        compiler = CheerpCompiler()
        compiler.compile_wasm(TINY_C, name="tiny")
        compiler.compile_wasm(OTHER_C, name="tiny")
        assert isolated_cache.stats.misses == 2

    def test_comment_only_change_hits(self, isolated_cache):
        # The key hashes the *preprocessed* source, so an edit the
        # preprocessor strips away entirely does not invalidate.
        compiler = CheerpCompiler()
        compiler.compile_wasm(TINY_C, name="tiny")
        commented = TINY_C.replace("init();\n  kernel();",
                                   "init();\n  kernel();/*cosmetic*/")
        assert commented != TINY_C
        compiler.compile_wasm(commented, name="tiny")
        assert isolated_cache.stats.hits == 1

    def test_defines_change_misses(self, isolated_cache):
        compiler = CheerpCompiler()
        compiler.compile_wasm(TINY_C, {"STEPS": 4}, name="tiny")
        compiler.compile_wasm(TINY_C, {"STEPS": 8}, name="tiny")
        assert isolated_cache.stats.misses == 2

    def test_opt_level_change_misses(self, isolated_cache):
        compiler = CheerpCompiler()
        compiler.compile_wasm(TINY_C, opt_level="O2", name="tiny")
        compiler.compile_wasm(TINY_C, opt_level="Oz", name="tiny")
        assert isolated_cache.stats.misses == 2

    def test_toolchain_config_change_misses(self, isolated_cache):
        CheerpCompiler(linear_heap_size=1 << 20).compile_wasm(
            TINY_C, name="tiny")
        CheerpCompiler(linear_heap_size=2 << 20).compile_wasm(
            TINY_C, name="tiny")
        assert isolated_cache.stats.misses == 2

    def test_toolchain_identity_separates(self, isolated_cache):
        CheerpCompiler().compile_wasm(TINY_C, name="tiny")
        EmscriptenCompiler().compile_wasm(TINY_C, name="tiny")
        assert isolated_cache.stats.misses == 2


class TestStaleness:
    def test_corrupt_entry_recompiled_and_counted(self, tmp_path):
        compiler = CheerpCompiler()
        configure(root=str(tmp_path), disk=True)
        first = compiler.compile_wasm(TINY_C, name="tiny")
        cache = configure(root=str(tmp_path), disk=True)
        (path,) = _pkl_files(cache)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        second = compiler.compile_wasm(TINY_C, name="tiny")
        configure()
        assert cache.stats.stale == 1
        assert cache.stats.misses == 1
        assert second.binary == first.binary
        # The corrupt entry was evicted and rewritten by the recompile.
        with open(path, "rb") as handle:
            assert pickle.load(handle).binary == first.binary

    def test_clear_empties_store(self, isolated_cache):
        CheerpCompiler().compile_wasm(TINY_C, name="tiny")
        assert isolated_cache.entry_count() == 1
        isolated_cache.clear()
        assert isolated_cache.entry_count() == 0
        CheerpCompiler().compile_wasm(TINY_C, name="tiny")
        assert isolated_cache.stats.misses == 2


class TestConfiguration:
    def test_env_dir_honored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        cache = configure()
        try:
            assert cache.root == str(tmp_path / "elsewhere" /
                                     CACHE_VERSION)
            CheerpCompiler().compile_wasm(TINY_C, name="tiny")
            assert cache.entry_count() == 1
        finally:
            monkeypatch.delenv("REPRO_CACHE_DIR")
            configure()

    def test_disk_disable_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "0")
        cache = configure()
        try:
            compiler = CheerpCompiler()
            first = compiler.compile_wasm(TINY_C, name="tiny")
            assert compiler.compile_wasm(TINY_C, name="tiny") is first
            assert cache.entry_count() == 0      # nothing written to disk
            assert cache.stats.hits == 1         # memory layer still on
        finally:
            monkeypatch.delenv("REPRO_CACHE_DIR")
            monkeypatch.delenv("REPRO_CACHE")
            configure()

    def test_key_is_order_insensitive_in_defines(self):
        kwargs = dict(kind="wasm", preprocessed="int main(){}",
                      opt_level="O2", toolchain="cheerp",
                      config_fingerprint=(), pipeline_fingerprint=("dce",),
                      name="m")
        assert cache_key(defines={"A": 1, "B": 2}, **kwargs) == \
            cache_key(defines={"B": 2, "A": 1}, **kwargs)

    def test_code_fingerprint_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestResultMemoization:
    """Measurements are deterministic, so REPRO_RESULT_CACHE=1 memoizes
    them under the same store; the layer is opt-in and off by default."""

    def test_off_by_default(self, isolated_cache, monkeypatch):
        monkeypatch.delenv(RESULT_CACHE_ENV, raising=False)
        artifact = CheerpCompiler().compile_wasm(TINY_C, name="tiny")
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=1)
        first = runner.run_wasm(artifact)
        second = runner.run_wasm(artifact)
        assert second is not first           # measured live, twice
        assert second.times_ms == first.times_ms   # ... deterministically
        assert isolated_cache.stats.puts == 1      # only the compile

    def test_memoizes_when_enabled(self, isolated_cache, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        artifact = CheerpCompiler().compile_wasm(TINY_C, name="tiny")
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=1)
        first = runner.run_wasm(artifact)
        second = runner.run_wasm(artifact)
        assert second is first               # memory-layer hit
        assert isolated_cache.stats.puts == 2      # compile + measurement

    def test_profile_separates_measurements(self, isolated_cache,
                                            monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        artifact = CheerpCompiler().compile_wasm(TINY_C, name="tiny")
        chrome = PageRunner(chrome_desktop(), DESKTOP,
                            repetitions=1).run_wasm(artifact)
        firefox = PageRunner(firefox_desktop(), DESKTOP,
                             repetitions=1).run_wasm(artifact)
        assert firefox is not chrome
        assert isolated_cache.stats.puts == 3      # compile + two profiles

class TestFailureSafety:
    """A failed or killed cell must never poison the result cache."""

    def test_failed_compute_memoizes_nothing(self, isolated_cache,
                                             monkeypatch):
        from repro.cache.memo import cached_result
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        calls = []

        def compute():
            calls.append(None)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return 42

        with pytest.raises(RuntimeError):
            cached_result("test", ("k",), compute)
        assert isolated_cache.stats.puts == 0
        # The retry recomputes and only then memoizes.
        assert cached_result("test", ("k",), compute) == 42
        assert len(calls) == 2
        assert cached_result("test", ("k",), compute) == 42
        assert len(calls) == 2

    def test_foreign_entry_recomputed_over(self, isolated_cache,
                                           monkeypatch):
        from repro.cache.memo import cached_result, result_key
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        # A key collision / corruption leaves something that is not a
        # ("result", value) pair: it must be replaced, not returned.
        isolated_cache.put(result_key("test", ("k",)), {"junk": True})
        assert cached_result("test", ("k",), lambda: 7) == 7
        assert cached_result("test", ("k",), lambda: 99) == 7

    def test_corrupt_replay_blob_recomputed_over(self, isolated_cache,
                                                 monkeypatch):
        from repro.cache.memo import cached_result, result_key
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        # A three-field entry whose replay_metrics blob cannot be applied
        # (truncated write / schema drift) used to raise mid-sweep; it
        # must be treated as stale: recomputed and overwritten.
        key = result_key("test", ("k",), replay_metrics=True)
        isolated_cache.put(key, ("result", 7, "not-a-metrics-diff"))
        calls = []

        def compute():
            calls.append(None)
            return 42

        assert cached_result("test", ("k",), compute,
                             replay_metrics=True) == 42
        assert calls  # recomputed, not served from the corrupt entry
        # The overwrite healed the entry: warm hits replay cleanly now.
        assert cached_result("test", ("k",), compute,
                             replay_metrics=True) == 42
        assert len(calls) == 1

    def test_partial_apply_rolls_back_before_recompute(self, isolated_cache,
                                                       monkeypatch):
        # Regression: `registry.apply` folds payload entries in order and
        # raises mid-iteration on a truncated/corrupt tail — the entries
        # it already folded used to stay behind, so the recompute that
        # followed double-counted them.  The replay must be transactional.
        from fractions import Fraction

        from repro.cache.memo import cached_result, result_key
        from repro.obs import DET, get_registry, reset_registry
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        reset_registry()
        try:
            zero = Fraction(0)
            # Truncated blob: the first counter applies cleanly, the
            # second raises (unknown stability tag) — exactly what a
            # half-written diff looks like after schema drift.
            corrupt = {"counters": {"memo.test.cells": (DET, 100, zero),
                                    "memo.test.tail": ("bogus", 1, zero)},
                       "gauges": {}, "hists": {}}
            key = result_key("test", ("k",), replay_metrics=True)
            isolated_cache.put(key, ("result", 7, corrupt))

            def compute():
                get_registry().counter_add("memo.test.cells", 1, DET)
                return 42

            assert cached_result("test", ("k",), compute,
                                 replay_metrics=True) == 42
            # Only the recompute's increment survives: the 100 the corrupt
            # blob managed to fold in before raising was rolled back.
            assert get_registry().export()["memo.test.cells"] == 1
            assert "memo.test.tail" not in get_registry().export()
        finally:
            reset_registry()

    def test_replay_flag_mismatch_never_drops_metrics(self, isolated_cache,
                                                      monkeypatch):
        # Regression: an entry stored by a replay_metrics=False caller is
        # a 2-tuple with no metrics blob; serving it to a
        # replay_metrics=True caller silently dropped the DET counters
        # the warm run should have exported.  The flag is folded into the
        # key so the two caller populations never share entries.
        from repro.cache.memo import cached_result, result_key
        from repro.obs import DET, get_registry, reset_registry
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        assert result_key("test", ("k",)) != \
            result_key("test", ("k",), replay_metrics=True)
        reset_registry()
        try:
            calls = []

            def compute():
                calls.append(None)
                get_registry().counter_add("memo.test.runs", 1, DET)
                return 42

            assert cached_result("test", ("k",), compute) == 42
            assert len(calls) == 1
            # The replay caller computes its own (metrics-carrying) entry
            # instead of being served the blobless one...
            assert cached_result("test", ("k",), compute,
                                 replay_metrics=True) == 42
            assert len(calls) == 2
            # ... and its warm hits replay the counter instead of losing it.
            before = get_registry().export()["memo.test.runs"]
            assert cached_result("test", ("k",), compute,
                                 replay_metrics=True) == 42
            assert len(calls) == 2
            assert get_registry().export()["memo.test.runs"] == before + 1
        finally:
            reset_registry()

    def test_stale_shape_entry_recomputed_over(self, isolated_cache,
                                               monkeypatch):
        # Belt and braces for old caches: a 2-tuple planted at the replay
        # key (e.g. written by a pre-flag-in-key build) is length-mismatched
        # and must be treated as stale, not served metrics-free.
        from repro.cache.memo import cached_result, result_key
        monkeypatch.setenv(RESULT_CACHE_ENV, "1")
        key = result_key("test", ("k",), replay_metrics=True)
        isolated_cache.put(key, ("result", 7))
        calls = []

        def compute():
            calls.append(None)
            return 42

        assert cached_result("test", ("k",), compute,
                             replay_metrics=True) == 42
        assert calls  # recomputed over the shape-mismatched entry

    def test_sweep_tmp_removes_only_stale_orphans(self, isolated_cache):
        import time
        root = isolated_cache.root
        os.makedirs(root, exist_ok=True)
        stale = os.path.join(root, "dead-worker.pkl.tmp")
        fresh = os.path.join(root, "in-flight.pkl.tmp")
        keeper = os.path.join(root, "entry.pkl")
        for path in (stale, fresh, keeper):
            with open(path, "wb") as handle:
                handle.write(b"x")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        assert isolated_cache.sweep_tmp(max_age_s=3600.0) == 1
        assert not os.path.exists(stale)
        assert os.path.exists(fresh) and os.path.exists(keeper)
