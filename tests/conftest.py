"""Shared fixtures: compilers, runners, and a tiny C program."""

import math

import pytest

from repro.compilers import CheerpCompiler, EmscriptenCompiler, LlvmX86Compiler
from repro.env import DESKTOP, chrome_desktop
from repro.harness import PageRunner
from repro.harness.runner import wasm_host_imports
from repro.wasm import WasmVM


TINY_C = """
#define N 8
double A[N][N]; double x[N]; double y[N];

void init() {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = (double)(i % 7) / N;
    y[i] = 0.0;
    for (j = 0; j < N; j++)
      A[i][j] = (double)((i * j + 1) % N) / N;
  }
}

void kernel() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      y[i] = y[i] + A[i][j] * x[j];
}

double checksum() {
  double s = 0.0;
  int i;
  for (i = 0; i < N; i++) s += y[i];
  return s;
}

int main() {
  init();
  kernel();
  printf("%f", checksum());
  return 0;
}
"""

#: Reference value of TINY_C's checksum, computed independently.
TINY_C_CHECKSUM = 9.4375


@pytest.fixture(scope="session")
def cheerp():
    return CheerpCompiler(linear_heap_size=1024 * 1024)


@pytest.fixture(scope="session")
def emscripten():
    return EmscriptenCompiler()


@pytest.fixture(scope="session")
def llvm_x86():
    return LlvmX86Compiler()


@pytest.fixture()
def runner():
    return PageRunner(chrome_desktop(), DESKTOP, repetitions=1)


def run_wasm_main(module, entry="main"):
    """Instantiate with standard C host imports and run; returns
    (outputs, instance)."""
    output = []
    vm = WasmVM()
    instance = vm.instantiate(module, wasm_host_imports(output, None))
    instance.invoke(entry)
    return output, instance
