"""Codegen-tier invariants beyond the differential suites: dispatch
completeness checked against the cost tables, budget-deopt resume
mid-frame on the wasm VM, GC-pause parity on the JS engine, and
cold-vs-warm compile-cache runs replaying identical DET counters.

The three tiers under test (see ``engine/codegen.py``)::

    REPRO_FAST_INTERP=0   reference ladders (differential oracle)
    REPRO_CODEGEN=0       threaded closures
    default               generated Python (codegen tier)
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import codegen as substrate
from repro.errors import TrapError
from repro.obs import DET, SCHED, get_registry, reset_registry

TIERS = ("ref", "threaded", "codegen")

_TIER_ENV = {"ref": ("0", "0"), "threaded": ("1", "0"),
             "codegen": ("1", "1")}


def _set_tier(monkeypatch, tier):
    fast, codegen = _TIER_ENV[tier]
    monkeypatch.setenv("REPRO_FAST_INTERP", fast)
    monkeypatch.setenv("REPRO_CODEGEN", codegen)


def _stats_dict(stats):
    """Repr-normalized stats snapshot (repr distinguishes -0.0 and int
    vs float, which `==` does not)."""
    snap = dataclasses.asdict(stats)
    return {k: repr(tuple(v) if isinstance(v, list) else v)
            for k, v in snap.items()}


# ---------------------------------------------------------------------------
# Dispatch completeness vs the cost tables.

class TestDispatchCompleteness:
    """Every opcode an engine's cost/class tables price must be handled
    by its threaded tier and therefore translatable by its codegen tier
    (the translators walk the threaded tier's own tables)."""

    def test_js_tables_cover_supported_ops(self):
        from repro.jsengine import threaded as jt
        from repro.jsengine.bytecode import (
            JS_OP_CLASS, JS_OP_COST, JS_OP_COST_OPT, JsOp)

        n = max(JsOp) + 1
        assert len(JS_OP_COST) == len(JS_OP_COST_OPT) == len(JS_OP_CLASS) == n
        # COMMA is the one priced opcode the compiler never emits; both
        # fast tiers refuse it loudly (see test below) rather than
        # mispricing it silently.
        assert jt.SUPPORTED_OPS == set(range(n)) - {JsOp.COMMA}
        for op in jt.SUPPORTED_OPS:
            assert JS_OP_COST[op] > 0.0
            assert JS_OP_COST_OPT[op] > 0.0

    def test_js_codegen_shadow_table_in_lockstep(self):
        from repro.jsengine import codegen as jcg
        from repro.jsengine import threaded as jt

        # The translator derives its shadow-write emission kinds from the
        # threaded tier's writer table; a new writer there must fail the
        # derivation, not silently skip the op.
        assert set(jcg._SHADOW_KIND) == set(jt._SHADOW_BIN)

    def test_wasm_tables_cover_supported_ops(self):
        from repro.wasm import threaded as wt
        from repro.wasm.instructions import OP_CLASS, OP_COST, Op

        n = max(Op) + 1
        assert len(OP_COST) == len(OP_CLASS) == n
        for op in wt.SUPPORTED_OPS:
            assert 0 <= op < n
            # UNREACHABLE is priced at zero on purpose: it only ever traps.
            assert OP_COST[op] > 0.0 or op == Op.UNREACHABLE

    def test_native_tables_cover_supported_ops(self):
        from repro.native import threaded as nt
        from repro.native.machine import N_COST, N_OP_CLASS, NOp

        n = max(NOp) + 1
        assert len(N_COST) == len(N_OP_CLASS) == n
        for op in nt.SUPPORTED_OPS:
            assert 0 <= op < n
            assert N_COST[op] > 0.0

    def test_js_unsupported_op_fails_loudly_in_codegen(self, monkeypatch):
        from repro.jsengine.engine import JsEngine
        from repro.jsengine.interpreter import JsRuntimeError, execute
        from repro.jsengine.values import JSFunction, UNDEFINED

        _set_tier(monkeypatch, "codegen")
        fn = JSFunction("bogus", [], [(48, None)], [], 0)
        with pytest.raises(JsRuntimeError, match="no handler"):
            execute(JsEngine(), fn, [], UNDEFINED)

    def test_wasm_program_translates_with_no_declines(
            self, cheerp, monkeypatch):
        from repro.engine.hostlib import wasm_host_imports
        from repro.wasm import WasmVM
        from tests.conftest import TINY_C

        _set_tier(monkeypatch, "codegen")
        reset_registry()
        artifact = cheerp.compile_wasm(TINY_C, name="cgfull")
        inst = WasmVM().instantiate(artifact.module,
                                    wasm_host_imports([], None))
        inst.invoke("main")
        exported = get_registry().export([SCHED])
        reset_registry()
        assert exported["interp.wasm.codegen_functions"] > 0
        assert exported["interp.wasm.codegen_blocks"] >= \
            exported["interp.wasm.codegen_functions"]
        assert exported.get("interp.wasm.codegen_declined", 0) == 0

    def test_native_program_translates_with_no_declines(
            self, llvm_x86, monkeypatch):
        from repro.native import execute_program
        from tests.conftest import TINY_C

        _set_tier(monkeypatch, "codegen")
        reset_registry()
        artifact = llvm_x86.compile(TINY_C, name="cgfull")
        execute_program(artifact.program, "main")
        exported = get_registry().export([SCHED])
        reset_registry()
        assert exported["interp.native.codegen_functions"] > 0
        assert exported.get("interp.native.codegen_declined", 0) == 0

    def test_js_program_translates_with_no_declines(self, monkeypatch):
        from repro.jsengine.engine import JsEngine

        _set_tier(monkeypatch, "codegen")
        reset_registry()
        engine = JsEngine()
        engine.load_script(GC_JS)
        exported = get_registry().export([SCHED])
        reset_registry()
        assert exported["interp.js.codegen_functions"] > 0
        assert exported.get("interp.js.codegen_declined", 0) == 0


# ---------------------------------------------------------------------------
# Budget deopt: the generated code checks the remaining instruction
# budget at block entry and bails to the per-op reference loop mid-frame
# (``run_from``) when the block would overrun it.

BUDGET_C = """
double buf[64];
double work(int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    buf[i % 64] = i * 0.5;
    s = s + buf[i % 64] - (double)(i % 3);
  }
  return s;
}
int main() {
  double s = work(150);
  printf("%d", (int)s);
  return (int)s;
}
"""


class TestBudgetDeoptResume:
    def _run(self, cheerp, monkeypatch, tier, budget):
        from repro.engine.hostlib import wasm_host_imports
        from repro.wasm import WasmVM

        _set_tier(monkeypatch, tier)
        artifact = cheerp.compile_wasm(BUDGET_C, name="cgbudget")
        output = []
        inst = WasmVM(max_instructions=budget).instantiate(
            artifact.module, wasm_host_imports(output, None))
        try:
            result = ("ok", inst.invoke("main"))
        except TrapError as exc:
            result = ("trap", str(exc))
        return result, _stats_dict(inst.stats), output

    def _instruction_count(self, cheerp, monkeypatch):
        (kind, _), stats, _ = self._run(cheerp, monkeypatch, "ref", None)
        assert kind == "ok"
        return int(stats["instructions"])

    def test_exact_budget_completes_without_deopt(self, cheerp, monkeypatch):
        total = self._instruction_count(cheerp, monkeypatch)
        runs = {}
        reset_registry()
        for tier in TIERS:
            runs[tier] = self._run(cheerp, monkeypatch, tier, total)
        exported = get_registry().export([SCHED])
        reset_registry()
        assert runs["ref"][0][0] == "ok"
        assert runs["ref"] == runs["threaded"] == runs["codegen"]
        # An exact budget never enters a block short: no deopt taken.
        assert exported.get("interp.wasm.codegen_deopts", 0) == 0

    @pytest.mark.parametrize("shortfall", ["one", "half"])
    def test_short_budget_traps_identically_after_deopt(
            self, cheerp, monkeypatch, shortfall):
        total = self._instruction_count(cheerp, monkeypatch)
        budget = total - 1 if shortfall == "one" else total // 2
        runs = {}
        reset_registry()
        for tier in TIERS:
            runs[tier] = self._run(cheerp, monkeypatch, tier, budget)
        exported = get_registry().export([SCHED])
        reset_registry()
        kind, message = runs["ref"][0]
        assert kind == "trap" and "instruction budget exhausted" in message
        # Identical trap point, stats (instructions, cycles, op_counts)
        # and partial host output across all three tiers: the generated
        # frame handed its locals and operand stack to ``run_from``
        # mid-frame and the reference loop finished the accounting.
        assert runs["ref"] == runs["threaded"] == runs["codegen"]
        assert exported["interp.wasm.codegen_deopts"] > 0

    def test_budget_restored_between_invokes(self, cheerp, monkeypatch):
        # The same instance can be invoked again after a budget trap:
        # each invoke sees the full budget, in every tier.
        total = self._instruction_count(cheerp, monkeypatch)
        for tier in TIERS:
            first = self._run(cheerp, monkeypatch, tier, total)
            again = self._run(cheerp, monkeypatch, tier, total)
            assert first[0][0] == "ok"
            assert first[0] == again[0]


# ---------------------------------------------------------------------------
# GC-pause parity on the JS engine: the generated frames must present
# the same live set to the collector as the threaded closures, so pause
# cycles (charged from live bytes) stay bit-identical.

GC_JS = r"""
function churn(n) {
  var a = [];
  var o = {count: 0, name: "o"};
  var t = "";
  for (var i = 0; i < n; i++) {
    a.push([i, i * 1.5]);
    o.count = o.count + i % 5;
    o.count++;
    t = t + "x" + i;
  }
  return o.count + a.length + t.length;
}
var total = 0;
for (var k = 0; k < 30; k++) { total = total + churn(45); }
console.log(total);
"""


class TestJsGcPauseParity:
    def _run(self, monkeypatch, tier):
        from repro.jsengine.config import JsEngineConfig
        from repro.jsengine.engine import JsEngine

        _set_tier(monkeypatch, tier)
        engine = JsEngine(config=JsEngineConfig(gc_trigger_bytes=20000))
        engine.load_script(GC_JS)
        return [str(x) for x in engine.console_output], \
            _stats_dict(engine.stats)

    def test_gc_pauses_identical_across_tiers(self, monkeypatch):
        runs = {tier: self._run(monkeypatch, tier) for tier in TIERS}
        _out, stats = runs["ref"]
        assert int(stats["gc_runs"]) > 0        # the program must collect
        assert runs["ref"] == runs["threaded"] == runs["codegen"]
        assert stats["gc_pause_cycles"] == \
            runs["codegen"][1]["gc_pause_cycles"]


# ---------------------------------------------------------------------------
# Cold vs warm compile cache: a warm process loads source + marshalled
# code objects from the persistent store instead of re-emitting, and the
# run it serves must replay identical DET counters.

class TestColdWarmCache:
    @pytest.fixture(autouse=True)
    def _isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        _set_tier(monkeypatch, "codegen")
        substrate.reset_cache()
        reset_registry()
        yield
        substrate.reset_cache()
        reset_registry()

    def _measure(self, artifact):
        from repro.env import DESKTOP, chrome_desktop
        from repro.harness import PageRunner

        reset_registry()
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=1)
        result = runner.run_wasm(artifact)
        reg = get_registry()
        det, sched = reg.export([DET]), reg.export([SCHED])
        return result, det, sched

    def test_warm_hits_replay_identical_det_counters(self, cheerp):
        from tests.conftest import TINY_C

        artifact = cheerp.compile_wasm(TINY_C, name="cgwarm")
        cold_result, cold_det, cold_sched = self._measure(artifact)
        assert cold_sched["interp.wasm.codegen_cache_misses"] > 0
        assert cold_sched.get("interp.wasm.codegen_cache_hits", 0) == 0

        # Dropping the in-process layers models a fresh process over the
        # same store: translation is served from disk, skipping both
        # source generation and compile().
        substrate.reset_cache()
        warm_result, warm_det, warm_sched = self._measure(artifact)
        assert warm_sched["interp.wasm.codegen_cache_hits"] > 0
        assert warm_sched.get("interp.wasm.codegen_cache_misses", 0) == 0

        assert cold_det            # profiling was on: opclass counters
        assert warm_det == cold_det
        assert warm_result.times_ms == cold_result.times_ms
        assert warm_result.detail["profile"] == \
            cold_result.detail["profile"]

    def test_js_warm_run_bit_identical(self, monkeypatch):
        from repro.jsengine.engine import JsEngine

        def run():
            reset_registry()
            engine = JsEngine()
            engine.load_script(GC_JS)
            return ([str(x) for x in engine.console_output],
                    _stats_dict(engine.stats),
                    get_registry().export([SCHED]))

        cold_out, cold_stats, cold_sched = run()
        assert cold_sched["interp.js.codegen_cache_misses"] > 0
        substrate.reset_cache()
        warm_out, warm_stats, warm_sched = run()
        assert warm_sched["interp.js.codegen_cache_hits"] > 0
        assert warm_out == cold_out
        assert warm_stats == cold_stats
