"""Experiment entry points: structure and cheap shape checks.

Heavy sweeps run in benchmarks/; here each experiment is exercised on the
quick subset with 1 repetition and reduced sizes, asserting the output
structure plus the paper findings that are cheap to check.
"""

import os

import pytest

from repro.experiments import (
    ExperimentContext, compare_cheerp_emscripten, context_switch_overhead,
    figure10_jit_improvement, figure5_opt_levels, table11_chrome_flags,
    table2_summary, table7_tier_comparison,
)
from repro.experiments.common import QUICK_SET
from repro.experiments.input_sizes import input_size_tables
from repro.suites import benchmark_names


@pytest.fixture(scope="module", autouse=True)
def _result_cache():
    """These tests assert shape properties of deterministic experiment
    results, so measurement memoization is sound: with a warm
    ``REPRO_CACHE_DIR`` this module skips its measurement runs entirely
    (the CI fast path).  ``REPRO_RESULT_CACHE=0`` forces live runs.
    Module-scoped so the expensive module fixtures below see it too."""
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_RESULT_CACHE",
                   os.environ.get("REPRO_RESULT_CACHE", "1"))
    yield
    patcher.undo()


@pytest.fixture(scope="module")
def ctx():
    context = ExperimentContext(quick=True, repetitions=1)
    # Narrow further for test speed: five representative benchmarks.
    keep = {"gemm", "jacobi-2d", "SHA", "DFADD", "MIPS"}
    context.benchmarks = lambda: [b for b in __import__(
        "repro.suites", fromlist=["all_benchmarks"]).all_benchmarks()
        if b.name in keep]
    return context


def test_quick_set_is_valid():
    names = set(benchmark_names())
    assert set(QUICK_SET) <= names


def test_context_switch_firefox_fastest():
    result = context_switch_overhead(calls=2000)
    data = result["data"]
    # §4.5: Firefox's boundary calls are far cheaper than Chrome's.
    assert data["firefox"]["vs_chrome"] < 0.35
    assert data["edge"]["vs_chrome"] >= 1.0
    assert "ratio vs Chrome" in result["text"]


def test_table11_flag_catalogue():
    result = table11_chrome_flags()
    assert "--no-opt" in result["text"]
    assert "--liftoff" in result["text"]
    assert any(flags.wasm_optimizing_only
               for _s, _f, flags in result["data"])


class TestOptLevels:
    @pytest.fixture(scope="class")
    def table2(self, request):
        context = ExperimentContext(quick=True, repetitions=1)
        keep = {"gemm", "jacobi-2d", "covariance", "ADPCM", "SHA",
                "trisolv", "lu", "atax"}
        from repro.suites import all_benchmarks
        context.benchmarks = lambda: [b for b in all_benchmarks()
                                      if b.name in keep]
        return table2_summary(context)

    def test_structure(self, table2):
        assert ("Exec. Time", "Oz/O2") in table2["data"]
        assert "Table 2" in table2["text"]

    def test_x86_behaves_as_intended(self, table2):
        # Fig. 6: on x86, -O1 and -Oz are clearly slower than -O2.
        data = table2["data"]
        assert data[("Exec. Time", "O1/O2")]["x86"] > 1.1
        assert data[("Exec. Time", "Oz/O2")]["x86"] > 1.05

    def test_wasm_counterintuitive(self, table2):
        # Table 2: -Oz produces the fastest Wasm; -O1 also beats -O2.
        data = table2["data"]
        assert data[("Exec. Time", "Oz/O2")]["wasm"] < 1.0
        assert data[("Exec. Time", "O1/O2")]["wasm"] < 1.0

    def test_code_sizes_stable_for_wasm_js(self, table2):
        # Paper: near-identical sizes (<2% variance on ~1000-LOC
        # programs).  Our modules are kernel-dominated, so the same
        # mechanisms (CSE temps, vector bookkeeping) show up as a
        # somewhat wider — but still small — spread.
        data = table2["data"]
        for level in ("O1/O2", "Ofast/O2", "Oz/O2"):
            assert 0.7 < data[("Code Size", level)]["wasm"] < 1.15
            assert 0.7 < data[("Code Size", level)]["js"] < 1.15

    def test_memory_flat_across_levels(self, table2):
        data = table2["data"]
        for level in ("O1/O2", "Ofast/O2", "Oz/O2"):
            assert 0.95 < data[("Memory", level)]["wasm"] < 1.05


class TestCompilers:
    def test_emscripten_faster_more_memory(self, ctx):
        result = compare_cheerp_emscripten(ctx)
        # §4.2.2 shape: faster, and much more memory.
        assert result["summary"]["speedup_gmean"] > 1.1
        assert result["summary"]["memory_gmean"] > 2.0

    def test_grow_counts_explain_it(self, ctx):
        result = compare_cheerp_emscripten(ctx)
        for entry in result["data"].values():
            assert entry["emcc_grows"] <= entry["cheerp_grows"]


class TestJit:
    def test_js_gains_wasm_does_not(self, ctx):
        result = figure10_jit_improvement(ctx)
        js = [e["improvement"] for e in result["data"]["js"].values()]
        wasm = [e["improvement"] for e in result["data"]["wasm"].values()]
        # Fig. 10: JS gains are large; Wasm ratios stay near 1.
        assert max(js) > 3.0
        assert all(0.7 < v < 1.8 for v in wasm)

    def test_tier_table_shape(self, ctx):
        result = table7_tier_comparison(ctx)
        overall = result["summary"]["Overall"]
        # Table 7: default beats basic-only, roughly matches opt-only.
        assert overall["LiftOff"] > 1.0
        assert overall["Baseline"] > 1.0
        assert 0.7 < overall["TurboFan"] < 1.3
        assert 0.8 < overall["Ion"] <= 1.05


class TestInputSizes:
    def test_chrome_tables(self, ctx):
        result = input_size_tables(ctx, "chrome", sizes=("XS", "M"))
        stats = result["exec"]
        # Wasm dominates at XS; the gap narrows by M (§4.3).
        assert stats["XS"]["all_gmean"] > stats["M"]["all_gmean"]
        assert result["memory"]["XS"]["wasm_kb"] > \
            result["memory"]["XS"]["js_kb"]

    def test_memory_flat_js_growing_wasm(self, ctx):
        result = input_size_tables(ctx, "chrome", sizes=("XS", "XL"))
        mem = result["memory"]
        assert mem["XL"]["js_kb"] < 1.5 * mem["XS"]["js_kb"]
        assert mem["XL"]["wasm_kb"] > 5 * mem["XS"]["wasm_kb"]


def test_figure5_raw_structure():
    context = ExperimentContext(quick=True, repetitions=1)
    from repro.suites import all_benchmarks
    context.benchmarks = lambda: [b for b in all_benchmarks()
                                  if b.name == "gemm"]
    result = figure5_opt_levels(context)
    entry = result["data"]["wasm"]["gemm"]
    assert set(entry["time"]) == {"O1/O2", "Ofast/O2", "Oz/O2"}
    assert entry["raw_time_ms"]["O2"] > 0
