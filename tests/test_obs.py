"""Telemetry layer unit tests: the metrics registry's determinism
properties, the snapshot/diff/apply worker protocol, the JSONL event
sink, spans, and the profiler switches."""

from __future__ import annotations

import json
import os
import pickle
import sys
from fractions import Fraction
from pathlib import Path

import pytest

from repro.obs import (
    DET, SCHED, WALL, EngineProfile, MetricsRegistry, emit, events_enabled,
    get_registry, new_profile, profile_enabled, reset_registry, span,
)
from repro.obs.metrics import Counter, DEFAULT_BOUNDS


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    yield
    reset_registry()


# -- counters --------------------------------------------------------------


def test_counter_int_fast_path_stays_int():
    c = Counter()
    c.add(3)
    c.add(4)
    assert c.value == 7
    assert isinstance(c.value, int)


def test_counter_float_accumulation_is_exact():
    """0.1 summed 10 times in float is not 1.0; through Fractions it is."""
    c = Counter()
    for _ in range(10):
        c.add(0.1)
    assert c.value == float(Fraction(1, 10) * 10) == 1.0


def test_counter_value_is_order_and_grouping_independent():
    values = [0.1, 0.7, 1e-9, 123456.25, 0.3, 2.0000001] * 7
    a = Counter()
    for v in values:
        a.add(v)
    b = Counter()
    for v in reversed(values):
        b.add(v)
    # Grouped accumulation (what worker diffs produce) agrees too.
    g1, g2 = Counter(), Counter()
    for v in values[:20]:
        g1.add(v)
    for v in values[20:]:
        g2.add(v)
    merged = Counter()
    merged.ints = g1.ints + g2.ints
    merged.frac = g1.frac + g2.frac
    assert a.value == b.value == merged.value


# -- registry --------------------------------------------------------------


def test_gauge_is_max_merge():
    reg = MetricsRegistry()
    reg.gauge_max("mem", 5)
    reg.gauge_max("mem", 3)
    reg.gauge_max("mem", 9)
    assert reg.export() == {"mem": 9}


def test_histogram_buckets():
    reg = MetricsRegistry()
    for v in (0.5, 1, 3, 100, 10 ** 9):
        reg.hist_observe("h", v)
    out = reg.export()["h"]
    assert out["bounds"] == list(DEFAULT_BOUNDS)
    assert sum(out["counts"]) == 5
    assert out["counts"][-1] == 1          # overflow bucket


def test_stability_conflict_raises():
    reg = MetricsRegistry()
    reg.counter_add("x", 1, DET)
    with pytest.raises(ValueError, match="already registered"):
        reg.counter_add("x", 1, SCHED)


def test_export_filters_by_stability():
    reg = MetricsRegistry()
    reg.counter_add("a", 1, DET)
    reg.counter_add("b", 1, SCHED)
    reg.counter_add("c", 1.5, WALL)
    assert reg.export([DET]) == {"a": 1}
    assert reg.export([SCHED]) == {"b": 1}
    assert reg.export([WALL]) == {"c": 1.5}
    assert reg.export() == {"a": 1, "b": 1, "c": 1.5}


def test_export_is_sorted_and_json_clean():
    reg = MetricsRegistry()
    reg.counter_add("z", 0.25)
    reg.counter_add("a", 2)
    reg.hist_observe("m", 3)
    out = reg.export()
    assert list(out) == sorted(out)
    json.dumps(out)                        # must not raise


def test_snapshot_restore_roundtrip():
    reg = MetricsRegistry()
    reg.counter_add("c", 2)
    reg.gauge_max("g", 7)
    reg.hist_observe("h", 4)
    snap = reg.snapshot()
    reg.counter_add("c", 100)
    reg.counter_add("new", 1)
    reg.gauge_max("g", 99)
    reg.restore(snap)
    assert reg.export() == {"c": 2, "g": 7,
                            "h": reg.export()["h"]}
    assert "new" not in reg.export()


def test_diff_apply_equals_direct_accumulation():
    """The worker protocol: parent.apply(worker.diff(snap)) must land the
    parent in exactly the state direct accumulation would have."""
    direct = MetricsRegistry()
    parent = MetricsRegistry()
    worker = MetricsRegistry()
    for reg in (direct, parent, worker):
        reg.counter_add("base", 5)
        reg.counter_add("f", 0.1)
    snap = worker.snapshot()
    worker.counter_add("base", 3)
    worker.counter_add("f", 0.2)
    worker.gauge_max("peak", 11, SCHED)
    worker.hist_observe("lat", 6, SCHED)
    payload = worker.diff(snap)
    payload = pickle.loads(pickle.dumps(payload))    # ships over a pipe
    parent.apply(payload)
    direct.counter_add("base", 3)
    direct.counter_add("f", 0.2)
    direct.gauge_max("peak", 11, SCHED)
    direct.hist_observe("lat", 6, SCHED)
    assert parent.export() == direct.export()
    assert parent._counters["f"].frac == direct._counters["f"].frac


def test_diff_is_empty_when_nothing_changed():
    reg = MetricsRegistry()
    reg.counter_add("c", 1)
    snap = reg.snapshot()
    payload = reg.diff(snap)
    assert payload == {"counters": {}, "gauges": {}, "hists": {}}


# -- events ----------------------------------------------------------------


def test_events_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_EVENTS", raising=False)
    assert not events_enabled()
    emit("noop", x=1)                      # must be a silent no-op


def test_event_sink_writes_jsonl(tmp_path, monkeypatch):
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(path))
    emit("unit", a=1, b="two")
    emit("unit", a=2)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "unit"
    assert first["a"] == 1 and first["b"] == "two"
    assert first["pid"] == os.getpid()


def test_emit_allows_kind_field(tmp_path, monkeypatch):
    """Compile spans and failure records carry their own ``kind`` field;
    it must not collide with the event kind (positional-only)."""
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(path))
    emit("span", kind="wasm", span="compile")
    event = json.loads(path.read_text().strip())
    assert event["event"] == "span"
    assert event["kind"] == "wasm"


def test_span_records_wall_and_count(tmp_path, monkeypatch):
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(path))
    with span("unit.region", phase="test") as fields:
        fields["extra"] = 42
    exported = get_registry().export()
    assert exported["unit.region.count"] == 1
    assert exported["unit.region.wall_ms"] >= 0.0
    assert get_registry().stability("unit.region.wall_ms") == WALL
    assert get_registry().stability("unit.region.count") == SCHED
    event = json.loads(path.read_text().strip())
    assert event["event"] == "span"
    assert event["span"] == "unit.region"
    assert event["extra"] == 42


def test_failed_open_resets_sink_state(tmp_path, monkeypatch):
    """An unopenable REPRO_EVENTS path must not leave stale path/pid
    bookkeeping behind — a later good path has to open cleanly."""
    from repro.obs import events as events_mod

    good = tmp_path / "good.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(good))
    emit("unit", n=1)                       # prime a healthy handle
    bad = tmp_path / "a-directory"
    bad.mkdir()
    monkeypatch.setenv("REPRO_EVENTS", str(bad))
    emit("unit", n=2)                       # open fails; must not raise
    assert events_mod._state["path"] is None
    assert events_mod._state["pid"] is None
    monkeypatch.setenv("REPRO_EVENTS", str(good))
    emit("unit", n=3)                       # recovers on the good path
    values = [json.loads(line)["n"]
              for line in good.read_text().strip().splitlines()]
    assert values == [1, 3]
    assert events_mod._state["path"] == str(good)


def test_fork_inherited_listeners_purged_once(monkeypatch):
    """A child that inherited the parent's listener table drops the
    foreign-pid tokens on first access and never delivers into them."""
    from repro.obs import events as events_mod

    monkeypatch.delenv("REPRO_EVENTS", raising=False)
    foreign_calls = []
    token = events_mod.add_listener(foreign_calls.append)
    try:
        # Forge a post-fork state: the table holds a token registered by
        # another pid, and the table's pid marker predates this process.
        events_mod._listeners[token] = (os.getpid() + 1,
                                        foreign_calls.append)
        events_mod._listeners_pid = None
        assert not events_enabled()          # purge on enablement check
        assert token not in events_mod._listeners
        assert events_mod._listeners_pid == os.getpid()
        emit("unit", x=1)
        assert foreign_calls == []
        # A live local listener still works after the purge.
        local_calls = []
        local = events_mod.add_listener(local_calls.append)
        try:
            emit("unit", x=2)
        finally:
            events_mod.remove_listener(local)
        assert [r["x"] for r in local_calls] == [2]
    finally:
        events_mod.remove_listener(token)


def test_raising_span_books_metrics_and_outcome(tmp_path, monkeypatch):
    """A region that raises still lands its wall_ms/count metrics, and
    its event records ``outcome: raised``."""
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(path))
    with pytest.raises(RuntimeError):
        with span("unit.fail", phase="test"):
            raise RuntimeError("boom")
    exported = get_registry().export()
    assert exported["unit.fail.count"] == 1
    assert exported["unit.fail.wall_ms"] >= 0.0
    event = json.loads(path.read_text().strip())
    assert event["outcome"] == "raised"
    with span("unit.fail", phase="test"):
        pass
    last = json.loads(path.read_text().strip().splitlines()[-1])
    assert last["outcome"] == "ok"
    assert get_registry().export()["unit.fail.count"] == 2


# -- prometheus export -----------------------------------------------------


def test_render_prometheus_text_exposition():
    from repro.obs import render_prometheus

    reg = MetricsRegistry()
    reg.counter_add("cache.hits", 3, SCHED)
    reg.counter_add("vm.cycles", 1.5, DET)
    reg.gauge_max("sched.peak", 7, SCHED)
    reg.hist_observe("sched.attempts", 1, SCHED, bounds=(1, 2))
    reg.hist_observe("sched.attempts", 5, SCHED, bounds=(1, 2))
    text = render_prometheus(reg, extra_gauges={
        "store.hits": 9,
        "service.outstanding_cells": (2, {"shard": "0"})})
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "# TYPE repro_cache_hits counter" in lines
    assert 'repro_cache_hits{stability="sched"} 3' in lines
    assert 'repro_vm_cycles{stability="det"} 1.5' in lines
    assert 'repro_sched_peak{stability="sched"} 7' in lines
    # Histogram buckets are cumulative and close with +Inf and _count
    # (registry bounds are exclusive: an observation of exactly 1 lands
    # in the next bucket).
    assert 'repro_sched_attempts_bucket{stability="sched",le="1"} 0' \
        in lines
    assert 'repro_sched_attempts_bucket{stability="sched",le="2"} 1' \
        in lines
    assert 'repro_sched_attempts_bucket{stability="sched",le="+Inf"} 2' \
        in lines
    assert 'repro_sched_attempts_count{stability="sched"} 2' in lines
    assert "# TYPE repro_store_hits gauge" in lines
    assert "repro_store_hits 9" in lines
    assert 'repro_service_outstanding_cells{shard="0"} 2' in lines


def test_render_prometheus_skips_unset_gauges():
    from repro.obs import render_prometheus

    reg = MetricsRegistry()
    reg.gauge_max("unset.gauge", 1, SCHED)
    reg._gauges["unset.gauge"].peak = None   # registered but never set
    text = render_prometheus(reg)
    assert "unset_gauge" not in text


# -- profiler --------------------------------------------------------------


def test_profile_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert not profile_enabled()
    assert new_profile("wasm") is None


def test_profile_enabled_values(monkeypatch):
    for value in ("1", "on", "true", "YES"):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert profile_enabled(), value
    for value in ("0", "off", ""):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert not profile_enabled(), value


def test_engine_profile_to_dict_is_sorted_and_stringified():
    p = EngineProfile("wasm")
    p.call("main")
    p.call("main")
    frame = p.frame("main")
    frame[7] = 3
    frame[2] = 1
    d = p.to_dict()
    assert d["engine"] == "wasm"
    assert d["calls"] == {"main": 2}
    assert list(d["ops"]["main"]) == ["2", "7"]
    assert d["ops"]["main"] == {"2": 1, "7": 3}
    json.dumps(d)


def test_obs_layering_rule_flags_back_edges(tmp_path):
    """The checker rejects any repro import from inside repro.obs."""
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    try:
        import check_layering
    finally:
        sys.path.pop(0)
    bad = tmp_path / "obs" / "metrics.py"
    bad.parent.mkdir()
    bad.write_text("def f():\n    from repro.engine import stats\n")
    ok = tmp_path / "obs" / "events.py"
    ok.write_text("from repro.obs.metrics import DET\n")
    violations = check_layering.check(src=tmp_path)
    assert len(violations) == 1
    assert "obs/metrics.py" in violations[0]
    assert "repro.engine" in violations[0]


def test_tracing_leaf_rule_pins_imports(tmp_path):
    """``repro.obs.tracing`` may import only the event sink and the
    env-flag helpers — anything else (even the metrics registry) is a
    violation, and the real module must be clean."""
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    try:
        import check_layering
    finally:
        sys.path.pop(0)
    tracing = tmp_path / "obs" / "tracing.py"
    tracing.parent.mkdir()
    tracing.write_text(
        "from repro.obs.events import emit\n"
        "from repro.obs.envflags import env_flag\n"
        "from repro.obs.metrics import get_registry\n")
    violations = check_layering.check(src=tmp_path)
    assert len(violations) == 1
    assert "obs/tracing.py" in violations[0]
    assert "repro.obs.metrics" in violations[0]
    # The shipped tree passes the full checker, tracing rule included.
    assert check_layering.check() == []
