"""Telemetry layer unit tests: the metrics registry's determinism
properties, the snapshot/diff/apply worker protocol, the JSONL event
sink, spans, and the profiler switches."""

from __future__ import annotations

import json
import os
import pickle
import sys
from fractions import Fraction
from pathlib import Path

import pytest

from repro.obs import (
    DET, SCHED, WALL, EngineProfile, MetricsRegistry, emit, events_enabled,
    get_registry, new_profile, profile_enabled, reset_registry, span,
)
from repro.obs.metrics import Counter, DEFAULT_BOUNDS


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    yield
    reset_registry()


# -- counters --------------------------------------------------------------


def test_counter_int_fast_path_stays_int():
    c = Counter()
    c.add(3)
    c.add(4)
    assert c.value == 7
    assert isinstance(c.value, int)


def test_counter_float_accumulation_is_exact():
    """0.1 summed 10 times in float is not 1.0; through Fractions it is."""
    c = Counter()
    for _ in range(10):
        c.add(0.1)
    assert c.value == float(Fraction(1, 10) * 10) == 1.0


def test_counter_value_is_order_and_grouping_independent():
    values = [0.1, 0.7, 1e-9, 123456.25, 0.3, 2.0000001] * 7
    a = Counter()
    for v in values:
        a.add(v)
    b = Counter()
    for v in reversed(values):
        b.add(v)
    # Grouped accumulation (what worker diffs produce) agrees too.
    g1, g2 = Counter(), Counter()
    for v in values[:20]:
        g1.add(v)
    for v in values[20:]:
        g2.add(v)
    merged = Counter()
    merged.ints = g1.ints + g2.ints
    merged.frac = g1.frac + g2.frac
    assert a.value == b.value == merged.value


# -- registry --------------------------------------------------------------


def test_gauge_is_max_merge():
    reg = MetricsRegistry()
    reg.gauge_max("mem", 5)
    reg.gauge_max("mem", 3)
    reg.gauge_max("mem", 9)
    assert reg.export() == {"mem": 9}


def test_histogram_buckets():
    reg = MetricsRegistry()
    for v in (0.5, 1, 3, 100, 10 ** 9):
        reg.hist_observe("h", v)
    out = reg.export()["h"]
    assert out["bounds"] == list(DEFAULT_BOUNDS)
    assert sum(out["counts"]) == 5
    assert out["counts"][-1] == 1          # overflow bucket


def test_stability_conflict_raises():
    reg = MetricsRegistry()
    reg.counter_add("x", 1, DET)
    with pytest.raises(ValueError, match="already registered"):
        reg.counter_add("x", 1, SCHED)


def test_export_filters_by_stability():
    reg = MetricsRegistry()
    reg.counter_add("a", 1, DET)
    reg.counter_add("b", 1, SCHED)
    reg.counter_add("c", 1.5, WALL)
    assert reg.export([DET]) == {"a": 1}
    assert reg.export([SCHED]) == {"b": 1}
    assert reg.export([WALL]) == {"c": 1.5}
    assert reg.export() == {"a": 1, "b": 1, "c": 1.5}


def test_export_is_sorted_and_json_clean():
    reg = MetricsRegistry()
    reg.counter_add("z", 0.25)
    reg.counter_add("a", 2)
    reg.hist_observe("m", 3)
    out = reg.export()
    assert list(out) == sorted(out)
    json.dumps(out)                        # must not raise


def test_snapshot_restore_roundtrip():
    reg = MetricsRegistry()
    reg.counter_add("c", 2)
    reg.gauge_max("g", 7)
    reg.hist_observe("h", 4)
    snap = reg.snapshot()
    reg.counter_add("c", 100)
    reg.counter_add("new", 1)
    reg.gauge_max("g", 99)
    reg.restore(snap)
    assert reg.export() == {"c": 2, "g": 7,
                            "h": reg.export()["h"]}
    assert "new" not in reg.export()


def test_diff_apply_equals_direct_accumulation():
    """The worker protocol: parent.apply(worker.diff(snap)) must land the
    parent in exactly the state direct accumulation would have."""
    direct = MetricsRegistry()
    parent = MetricsRegistry()
    worker = MetricsRegistry()
    for reg in (direct, parent, worker):
        reg.counter_add("base", 5)
        reg.counter_add("f", 0.1)
    snap = worker.snapshot()
    worker.counter_add("base", 3)
    worker.counter_add("f", 0.2)
    worker.gauge_max("peak", 11, SCHED)
    worker.hist_observe("lat", 6, SCHED)
    payload = worker.diff(snap)
    payload = pickle.loads(pickle.dumps(payload))    # ships over a pipe
    parent.apply(payload)
    direct.counter_add("base", 3)
    direct.counter_add("f", 0.2)
    direct.gauge_max("peak", 11, SCHED)
    direct.hist_observe("lat", 6, SCHED)
    assert parent.export() == direct.export()
    assert parent._counters["f"].frac == direct._counters["f"].frac


def test_diff_is_empty_when_nothing_changed():
    reg = MetricsRegistry()
    reg.counter_add("c", 1)
    snap = reg.snapshot()
    payload = reg.diff(snap)
    assert payload == {"counters": {}, "gauges": {}, "hists": {}}


# -- events ----------------------------------------------------------------


def test_events_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_EVENTS", raising=False)
    assert not events_enabled()
    emit("noop", x=1)                      # must be a silent no-op


def test_event_sink_writes_jsonl(tmp_path, monkeypatch):
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(path))
    emit("unit", a=1, b="two")
    emit("unit", a=2)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "unit"
    assert first["a"] == 1 and first["b"] == "two"
    assert first["pid"] == os.getpid()


def test_emit_allows_kind_field(tmp_path, monkeypatch):
    """Compile spans and failure records carry their own ``kind`` field;
    it must not collide with the event kind (positional-only)."""
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(path))
    emit("span", kind="wasm", span="compile")
    event = json.loads(path.read_text().strip())
    assert event["event"] == "span"
    assert event["kind"] == "wasm"


def test_span_records_wall_and_count(tmp_path, monkeypatch):
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(path))
    with span("unit.region", phase="test") as fields:
        fields["extra"] = 42
    exported = get_registry().export()
    assert exported["unit.region.count"] == 1
    assert exported["unit.region.wall_ms"] >= 0.0
    assert get_registry().stability("unit.region.wall_ms") == WALL
    assert get_registry().stability("unit.region.count") == SCHED
    event = json.loads(path.read_text().strip())
    assert event["event"] == "span"
    assert event["span"] == "unit.region"
    assert event["extra"] == 42


# -- profiler --------------------------------------------------------------


def test_profile_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert not profile_enabled()
    assert new_profile("wasm") is None


def test_profile_enabled_values(monkeypatch):
    for value in ("1", "on", "true", "YES"):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert profile_enabled(), value
    for value in ("0", "off", ""):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert not profile_enabled(), value


def test_engine_profile_to_dict_is_sorted_and_stringified():
    p = EngineProfile("wasm")
    p.call("main")
    p.call("main")
    frame = p.frame("main")
    frame[7] = 3
    frame[2] = 1
    d = p.to_dict()
    assert d["engine"] == "wasm"
    assert d["calls"] == {"main": 2}
    assert list(d["ops"]["main"]) == ["2", "7"]
    assert d["ops"]["main"] == {"2": 1, "7": 3}
    json.dumps(d)


def test_obs_layering_rule_flags_back_edges(tmp_path):
    """The checker rejects any repro import from inside repro.obs."""
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    try:
        import check_layering
    finally:
        sys.path.pop(0)
    bad = tmp_path / "obs" / "metrics.py"
    bad.parent.mkdir()
    bad.write_text("def f():\n    from repro.engine import stats\n")
    ok = tmp_path / "obs" / "events.py"
    ok.write_text("from repro.obs.metrics import DET\n")
    violations = check_layering.check(src=tmp_path)
    assert len(violations) == 1
    assert "obs/metrics.py" in violations[0]
    assert "repro.engine" in violations[0]
