"""Optimization passes: each pass's transformation and, crucially,
semantic preservation (every pass is re-validated by executing the
optimized module on the Wasm VM and comparing outputs)."""

import pytest

from repro.backends import generate_wasm
from repro.cfront import parse_c, preprocess
from repro.ir.nodes import (
    EBin, ECast, EConst, ELocal, SAssign, SFor, SStore, walk_all_exprs,
    walk_stmts,
)
from repro.ir.passes import (
    PASSES, common_subexpression_elimination, constant_fold,
    dead_code_elimination, fast_math, global_opt, inline_functions,
    libcalls_shrinkwrap, loop_invariant_code_motion,
    rematerialize_constants, run_pipeline, unroll_loops, vectorize_loops,
)
from repro.ir.passes.globalopt import global_opt_conservative
from repro.wasm import validate_module

from tests.conftest import TINY_C, TINY_C_CHECKSUM, run_wasm_main


def compile_ir(source, defines=None):
    module = parse_c(preprocess(source, defines))
    # Frontend normalisation, as the toolchains apply it (mem2reg-style).
    dead_code_elimination(module)
    return module


def run_ir(module):
    wasm = generate_wasm(module)
    validate_module(wasm)
    outputs, _ = run_wasm_main(wasm)
    return outputs


class TestConstantFold:
    def test_folds_arithmetic(self):
        module = compile_ir("int f() { return 2 * 3 + 4; }")
        constant_fold(module)
        expr = module.functions["f"].body[-1].expr
        assert isinstance(expr, EConst) and expr.value == 10

    def test_respects_no_fold(self):
        module = compile_ir("double f() { double x; x = 4.0;"
                            " return x; }")
        rematerialize_constants(module)
        dead_code_elimination(module)   # drop the now-dead definition
        constant_fold(module)
        # The rematerialised constant survives folding (Fig. 8 mechanism).
        consts = [e for e in walk_all_exprs(module.functions["f"].body)
                  if isinstance(e, EConst) and e.value == 4.0]
        assert consts and all(c.no_fold for c in consts)

    def test_prunes_constant_if(self):
        module = compile_ir("int f() { if (0) return 1; return 2; }")
        constant_fold(module)
        assert len(module.functions["f"].body) == 1

    def test_identity_simplification(self):
        module = compile_ir("int f(int a) { return a * 1 + 0; }")
        constant_fold(module)
        expr = module.functions["f"].body[-1].expr
        assert isinstance(expr, ELocal)

    def test_preserves_float_identity_without_fastmath(self):
        # x + 0.0 is not a no-op for -0.0; only relaxed ops may fold it.
        module = compile_ir("double f(double x) { return x + 0.0; }")
        constant_fold(module)
        assert isinstance(module.functions["f"].body[-1].expr, EBin)


class TestDce:
    def test_removes_dead_assignment(self):
        module = compile_ir(
            "int f() { int a, b; a = 1; b = 2; return b; }")
        dead_code_elimination(module)
        assigns = [s for s in module.functions["f"].body
                   if isinstance(s, SAssign)]
        assert all(s.name != "a" for s in assigns)

    def test_keeps_impure_assignment(self):
        module = compile_ir("""
        int g = 0;
        int bump() { g = g + 1; return g; }
        int f() { int dead; dead = bump(); return 7; }
        """)
        dead_code_elimination(module)
        body = module.functions["f"].body
        assert any(isinstance(s, SAssign) and s.name == "dead"
                   for s in body)

    def test_removes_unreachable_after_return(self):
        module = compile_ir("int g = 0;"
                            "int f() { return 1; g = 5; return 2; }")
        dead_code_elimination(module)
        assert len(module.functions["f"].body) == 1


class TestGlobalOpt:
    DEAD_STORE = """
    int result[16];
    int out = 0;
    void work() {
      int i;
      for (i = 0; i < 16; i++) {
        result[i] = i * 2;
        out = out + i;
      }
    }
    int main() { work(); printf("%d", out); return 0; }
    """

    def test_removes_never_read_array(self):
        module = compile_ir(self.DEAD_STORE)
        global_opt(module)
        assert "result" not in module.arrays
        assert not any(isinstance(s, SStore)
                       for s in walk_stmts(module.functions["work"].body))

    def test_conservative_keeps_stores_under_fastmath(self):
        # The Cheerp -Ofast / ADPCM mechanism (Fig. 7).
        module = compile_ir(self.DEAD_STORE)
        fast_math(module)
        global_opt_conservative(module)
        assert "result" in module.arrays

    def test_nonconservative_removes_even_with_fastmath(self):
        module = compile_ir(self.DEAD_STORE)
        fast_math(module)
        global_opt(module)
        assert "result" not in module.arrays

    def test_semantics_preserved(self):
        module = compile_ir(self.DEAD_STORE)
        reference = run_ir(compile_ir(self.DEAD_STORE))
        global_opt(module)
        assert run_ir(module) == reference


class TestLicmCse:
    HOISTABLE = """
    double a[64];
    double out = 0.0;
    void f(int n, double s) {
      int i;
      for (i = 0; i < n; i++)
        a[i] = s * 2.0 + s * 2.0;
    }
    int main() {
      int i;
      f(8, 1.5);
      for (i = 0; i < 8; i++) out += a[i];
      printf("%f", out);
      return 0;
    }
    """

    def test_licm_hoists_invariant(self):
        module = compile_ir(self.HOISTABLE)
        loop_invariant_code_motion(module)
        body = module.functions["f"].body
        # A temp assignment now precedes the loop.
        loop_index = next(i for i, s in enumerate(body)
                          if isinstance(s, SFor))
        assert any(isinstance(s, SAssign) and s.name.startswith("__licm")
                   for s in body[:loop_index])

    def test_licm_preserves_semantics(self):
        reference = run_ir(compile_ir(self.HOISTABLE))
        module = compile_ir(self.HOISTABLE)
        loop_invariant_code_motion(module)
        assert run_ir(module) == reference

    def test_cse_dedups_repeated_subexpr(self):
        module = compile_ir(self.HOISTABLE)
        common_subexpression_elimination(module)
        body = module.functions["f"].body
        cse_temps = [s for s in walk_stmts(body)
                     if isinstance(s, SAssign)
                     and s.name.startswith("__cse")]
        assert cse_temps

    def test_cse_single_use_inlined_back(self):
        module = compile_ir("int f(int a) { return a + a * 2; }")
        common_subexpression_elimination(module)
        temps = [s for s in walk_stmts(module.functions["f"].body)
                 if isinstance(s, SAssign)]
        assert not temps   # nothing repeated → nothing introduced

    def test_cse_preserves_semantics(self):
        reference = run_ir(compile_ir(self.HOISTABLE))
        module = compile_ir(self.HOISTABLE)
        common_subexpression_elimination(module)
        assert run_ir(module) == reference


class TestInline:
    SRC = """
    int sq(int x) { return x * x; }
    int main() { printf("%d", sq(3) + sq(4)); return 0; }
    """

    def test_expression_function_inlined(self):
        module = compile_ir(self.SRC)
        inline_functions(module)
        assert "sq" not in module.functions

    def test_semantics_preserved(self):
        reference = run_ir(compile_ir(self.SRC))
        module = compile_ir(self.SRC)
        inline_functions(module)
        assert run_ir(module) == reference

    def test_main_never_inlined_away(self):
        module = compile_ir("int main() { return 1; }")
        inline_functions(module)
        assert "main" in module.functions


class TestVectorize:
    def test_marks_innermost_f64_loop(self):
        module = compile_ir(TINY_C, {"N": 8})
        vectorize_loops(module)
        marked = [s for s in walk_stmts(module.functions["kernel"].body)
                  if isinstance(s, SFor) and s.vector_width]
        assert marked and marked[0].vector_width == 4

    def test_skips_loops_with_calls(self):
        module = compile_ir("""
        double a[8];
        double g(double x) { return x; }
        void f() { int i; for (i = 0; i < 8; i++) a[i] = g(1.0); }
        """)
        vectorize_loops(module)
        assert not any(s.vector_width
                       for s in walk_stmts(module.functions["f"].body)
                       if isinstance(s, SFor))

    def test_skips_integer_only_loops(self):
        module = compile_ir(
            "int a[8]; void f() { int i;"
            " for (i = 0; i < 8; i++) a[i] = i; }")
        vectorize_loops(module)
        assert not any(s.vector_width
                       for s in walk_stmts(module.functions["f"].body)
                       if isinstance(s, SFor))


class TestFastMathShrinkwrapUnroll:
    def test_fastmath_reciprocal(self):
        module = compile_ir("double f(double x) { return x / 4.0; }")
        fast_math(module)
        expr = module.functions["f"].body[-1].expr
        assert expr.op == "*" and expr.right.value == 0.25
        assert module.meta["fastmath"]

    def test_fastmath_skips_nonconst_divisor(self):
        module = compile_ir("double f(double x, double y)"
                            " { return x / y; }")
        fast_math(module)
        assert module.functions["f"].body[-1].expr.op == "/"

    def test_shrinkwrap_wraps_unused_libcall(self):
        module = compile_ir("void f(double x) { exp(x); }")
        libcalls_shrinkwrap(module)
        from repro.ir.nodes import SIf
        assert isinstance(module.functions["f"].body[0], SIf)

    def test_unroll_doubles_body(self):
        module = compile_ir(TINY_C, {"N": 8})
        before = _stmt_count(module.functions["kernel"].body)
        unroll_loops(module)
        after = _stmt_count(module.functions["kernel"].body)
        assert after > before

    def test_unroll_preserves_semantics_odd_trip(self):
        src = TINY_C.replace("#define N 8", "#define N 7")
        reference = run_ir(compile_ir(src))
        module = compile_ir(src)
        unroll_loops(module)
        assert run_ir(module) == reference


class TestPipelines:
    def test_registry_complete(self):
        for name in ("constfold", "dce", "globalopt", "licm", "gvn",
                     "inline", "vectorize-loops", "remat-consts",
                     "fast-math", "libcalls-shrinkwrap", "unroll"):
            assert name in PASSES

    def test_run_pipeline_records_passes(self):
        module = compile_ir("int f() { return 1 + 1; }")
        applied = run_pipeline(module, ["constfold", "dce"])
        assert applied == ["constfold", "dce"]
        assert module.meta["passes"] == applied

    @pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3", "Ofast",
                                       "Os", "Oz"])
    def test_all_cheerp_levels_preserve_tiny_c(self, level, cheerp):
        artifact = cheerp.compile_wasm(TINY_C, opt_level=level)
        outputs, _ = run_wasm_main(artifact.module)
        assert outputs[0] == pytest.approx(TINY_C_CHECKSUM)


def _stmt_count(body):
    return sum(1 for _ in walk_stmts(body))
