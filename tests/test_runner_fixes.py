"""Regression tests for the repetition-aggregation and libm-shim fixes.

Each test here fails against the pre-fix runner/host-import code:

* memory was overwritten per repetition (last-run value instead of the
  §3.3.2 high-water mark);
* output/detail were overwritten per repetition, and differing outputs
  between repetitions went undetected;
* ``run_js`` recorded ``timer_ms`` from only the final repetition;
* the ``pow``/``log``/``fmod`` host shims raised Python exceptions (or
  returned NaN) where C99 libm returns inf/NaN values.
"""

import math
from types import SimpleNamespace

import pytest

from repro.env import DESKTOP, chrome_desktop
from repro.env.devtools import Metrics
from repro.errors import MeasurementError
from repro.harness import PageRunner
from repro.harness.runner import wasm_host_imports
from tests.conftest import TINY_C


def _fake_instance():
    return SimpleNamespace(stats=SimpleNamespace(cycles=0.0))


# -- libm shims (C99 Annex F semantics) --------------------------------------

class TestHostLibm:
    @pytest.fixture(scope="class")
    def imports(self):
        return wasm_host_imports([], None)

    def test_pow_zero_to_negative_is_inf(self, imports):
        # C99 F.9.4.4: pow(±0, y<0) raises div-by-zero and returns
        # ±HUGE_VAL; math.pow raises ValueError instead.
        assert imports[("env", "pow")](_fake_instance(), 0.0, -1.0) \
            == math.inf
        assert imports[("env", "pow")](_fake_instance(), -0.0, -3.0) \
            == -math.inf
        assert imports[("env", "pow")](_fake_instance(), -0.0, -2.0) \
            == math.inf

    def test_pow_overflow_saturates(self, imports):
        assert imports[("env", "pow")](_fake_instance(), 2.0, 1e9) \
            == math.inf
        # Negative base, odd integral exponent: overflow keeps the sign.
        assert imports[("env", "pow")](_fake_instance(), -10.0, 311.0) \
            == -math.inf
        assert imports[("env", "pow")](_fake_instance(), -10.0, 312.0) \
            == math.inf

    def test_pow_special_operands(self, imports):
        p = imports[("env", "pow")]
        assert p(_fake_instance(), float("nan"), 0.0) == 1.0
        assert p(_fake_instance(), 1.0, float("nan")) == 1.0
        assert p(_fake_instance(), -1.0, math.inf) == 1.0
        assert math.isnan(p(_fake_instance(), -2.0, 0.5))
        assert p(_fake_instance(), -2.0, 3.0) == -8.0

    def test_fmod_infinite_dividend_is_nan(self, imports):
        # C99: fmod(±inf, y) is NaN; math.fmod raises ValueError.
        assert math.isnan(imports[("env", "fmod")](_fake_instance(),
                                                   math.inf, 2.0))
        assert math.isnan(imports[("env", "fmod")](_fake_instance(),
                                                   1.0, 0.0))
        assert imports[("env", "fmod")](_fake_instance(), 3.5, math.inf) \
            == 3.5

    def test_log_edge_cases(self, imports):
        assert imports[("env", "log")](_fake_instance(), 0.0) == -math.inf
        assert math.isnan(imports[("env", "log")](_fake_instance(), -1.0))
        assert imports[("env", "log")](_fake_instance(), math.inf) \
            == math.inf


# -- repetition aggregation ---------------------------------------------------

class _ScriptedCollector:
    """Stands in for DevTools/AdbCollector, returning canned metrics so
    repetitions can differ (the real engines are deterministic)."""

    def __init__(self, memories):
        self.memories = list(memories)
        self.calls = 0

    def _next(self):
        memory = self.memories[self.calls % len(self.memories)]
        self.calls += 1
        return Metrics(execution_time_ms=float(self.calls),
                       memory_kb=memory,
                       detail={"call": self.calls})

    def js_metrics(self, engine):
        return self._next()

    def wasm_metrics(self, cycles, instance):
        return self._next()


@pytest.fixture()
def compiled(cheerp):
    return {"wasm": cheerp.compile_wasm(TINY_C, name="tiny"),
            "js": cheerp.compile_js(TINY_C, name="tiny")}


def _runner(repetitions, memories):
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=repetitions)
    runner.collector = _ScriptedCollector(memories)
    return runner


class TestRepetitionAggregation:
    def test_memory_is_high_water_mark_wasm(self, compiled):
        result = _runner(3, [10.0, 30.0, 20.0]).run_wasm(compiled["wasm"])
        assert result.memory_kb == 30.0          # pre-fix: 20.0 (last rep)

    def test_memory_is_high_water_mark_js(self, compiled):
        result = _runner(3, [5.0, 40.0, 15.0]).run_js(compiled["js"])
        assert result.memory_kb == 40.0

    def test_per_repetition_details_kept(self, compiled):
        result = _runner(3, [1.0]).run_wasm(compiled["wasm"])
        assert len(result.rep_details) == 3
        assert [d["call"] for d in result.rep_details] == [1, 2, 3]
        assert len(result.times_ms) == 3

    def test_js_timer_recorded_per_repetition(self, cheerp):
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=3)
        result = runner.run_js(cheerp.compile_js(TINY_C, name="tiny"))
        per_rep = result.detail["timer_ms_per_rep"]
        assert len(per_rep) == 3                 # pre-fix: key missing
        assert all(value == per_rep[0] for value in per_rep)
        assert result.detail["timer_ms"] == per_rep[-1]

    def test_output_must_match_across_repetitions(self, compiled,
                                                  monkeypatch):
        # Make the host imports nondeterministic: each instantiation's
        # prints are tagged with a fresh counter value, so repetition 2
        # "computes" different output than repetition 1.
        counter = {"n": 0}

        def tagged_imports(output, instance_box):
            counter["n"] += 1
            tag = counter["n"]
            imports = wasm_host_imports(output, instance_box)
            for name in ("__print_i32", "__print_i64", "__print_f64"):
                imports[("env", name)] = (
                    lambda inst, value, _tag=tag: output.append(
                        (value, _tag)))
            return imports

        monkeypatch.setattr("repro.harness.runner.wasm_host_imports",
                            tagged_imports)
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=2)
        with pytest.raises(MeasurementError):
            runner.run_wasm(compiled["wasm"])    # pre-fix: silent

    def test_identical_outputs_pass(self, compiled):
        result = PageRunner(chrome_desktop(), DESKTOP,
                            repetitions=2).run_wasm(compiled["wasm"])
        assert result.output                      # TINY_C prints a checksum

# -- libm sign-of-zero and copysign propagation -------------------------------

SIGNED_ZERO_C = r"""
double cs(double x, double y) { return copysign(x, y); }
double fmz(double x, double y) { return fmod(x, y); }
double pwz(double x, double y) { return pow(x, y); }
int main() { return 0; }
"""


class TestLibmSignedZero:
    """The zero results of fmod/pow must keep their C99 sign, and
    copysign must exist in every host-shim registry — it used to be
    absent from all of them."""

    @pytest.fixture(scope="class")
    def imports(self):
        return wasm_host_imports([], None)

    def test_fmod_sign_of_zero(self, imports):
        fm = imports[("env", "fmod")]
        assert repr(fm(_fake_instance(), -6.0, 3.0)) == "-0.0"
        assert repr(fm(_fake_instance(), -0.0, 3.0)) == "-0.0"
        assert repr(fm(_fake_instance(), 6.0, -3.0)) == "0.0"
        assert repr(fm(_fake_instance(), -0.0, math.inf)) == "-0.0"

    def test_pow_negative_zero_base_odd_exponent(self, imports):
        p = imports[("env", "pow")]
        assert repr(p(_fake_instance(), -0.0, 3.0)) == "-0.0"
        assert p(_fake_instance(), -0.0, -3.0) == -math.inf
        assert repr(p(_fake_instance(), -0.0, 2.0)) == "0.0"
        assert p(_fake_instance(), -0.0, -2.0) == math.inf

    def test_copysign_in_every_registry(self, imports):
        from repro.engine.hostlib import JS_MATH, LIBM, native_libm
        assert "copysign" in LIBM and "copysign" in JS_MATH
        assert native_libm("copysign")(3.0, -0.0) == -3.0
        cs = imports[("env", "copysign")]
        assert cs(_fake_instance(), 3.0, -0.0) == -3.0
        assert repr(cs(_fake_instance(), -0.0, 1.0)) == "0.0"
        assert math.isnan(cs(_fake_instance(), math.nan, -1.0))

    def test_copysign_charges_host_cycles(self, imports):
        instance = _fake_instance()
        imports[("env", "copysign")](instance, 1.0, -1.0)
        assert instance.stats.cycles > 0


class TestCopysignEndToEnd:
    """copysign through the real pipelines: C source → each backend →
    each engine, with the sign of zero intact."""

    CASES = [("cs", (3.0, -0.0), "-3.0"), ("cs", (-3.0, 0.0), "3.0"),
             ("cs", (-0.0, 1.0), "0.0"), ("fmz", (-6.0, 3.0), "-0.0"),
             ("pwz", (-0.0, 3.0), "-0.0")]

    def test_wasm(self, cheerp):
        art = cheerp.compile_wasm(SIGNED_ZERO_C, name="signedzero")
        from repro.wasm import WasmVM
        instance = WasmVM().instantiate(art.module,
                                        wasm_host_imports([], None))
        for fn, args, expected in self.CASES:
            assert repr(instance.invoke(fn, *args)) == expected

    def test_native(self, llvm_x86):
        from repro.native import execute_program
        art = llvm_x86.compile(SIGNED_ZERO_C, name="signedzero")
        for fn, args, expected in self.CASES:
            assert repr(execute_program(art.program, fn, args)[0]) \
                == expected

    def test_js(self, cheerp):
        from repro.harness import install_c_host
        from repro.jsengine import JsEngine
        art = cheerp.compile_js(SIGNED_ZERO_C, name="signedzero")
        engine = JsEngine()
        install_c_host(engine, [])
        engine.load_script(art.source)
        for fn, args, expected in self.CASES:
            assert repr(engine.call_global(fn, *args)) == expected
