"""Real-world applications: Long.js, Hyphenopoly, FFmpeg, WebWorker pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import FfmpegApp, HyphenopolyApp, LongJsApp, WebWorkerPool
from repro.apps.hyphenopoly import PATTERNS, make_text


class TestWorkerPool:
    def test_serial_is_sum(self):
        pool = WebWorkerPool(4)
        assert pool.serial_cycles([10, 20, 30]) == 60

    def test_makespan_single_worker(self):
        pool = WebWorkerPool(1, post_message_cycles=5)
        assert pool.makespan_cycles([10, 20]) == 40

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            WebWorkerPool(0)

    @given(st.lists(st.floats(min_value=1, max_value=1e6), min_size=1,
                    max_size=40),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=60)
    def test_makespan_bounds(self, items, workers):
        pool = WebWorkerPool(workers, post_message_cycles=0.0)
        makespan = pool.makespan_cycles(items)
        serial = pool.serial_cycles(items)
        assert serial / workers - 1e-6 <= makespan <= serial + 1e-6
        assert makespan >= max(items) - 1e-6


class TestLongJs:
    @pytest.fixture(scope="class")
    def results(self):
        return LongJsApp(iterations=300).run()

    def test_three_experiments(self, results):
        assert set(results) == {"multiplication", "division", "remainder"}

    def test_checksums_match(self, results):
        for label, entry in results.items():
            assert entry["js_checksum"] == entry["wasm_checksum"], label

    def test_wasm_faster(self, results):
        # Table 10: every Long.js ratio < 1 (Wasm wins).
        for entry in results.values():
            assert entry["ratio"] < 1.0

    def test_op_count_asymmetry(self, results):
        # Table 12: JS runs far more arithmetic than Wasm.
        mul = results["multiplication"]
        js_total = sum(mul["js_ops"].values())
        wasm_total = sum(mul["wasm_ops"].values())
        assert js_total > 4 * wasm_total

    def test_wasm_one_mul_per_operation(self, results):
        mul = results["multiplication"]
        assert mul["wasm_ops"]["MUL"] == mul["iterations"]

    def test_js_mul_uses_16bit_chunks(self, results):
        # Long.js splits into 16-bit chunks: ≥10 multiplies per long mul.
        mul = results["multiplication"]
        assert mul["js_ops"]["MUL"] >= 10 * mul["iterations"]

    def test_division_heaviest_for_js(self, results):
        assert results["division"]["js_ms"] > \
            results["multiplication"]["js_ms"]


class TestHyphenopoly:
    @pytest.fixture(scope="class")
    def results(self):
        return HyphenopolyApp(text_bytes=1024).run()

    def test_both_languages(self, results):
        assert set(results) == {"en-us", "fr"}

    def test_implementations_agree(self, results):
        for language, entry in results.items():
            assert entry["wasm_points"] == entry["js_points"], language
            assert entry["wasm_points"] > 0

    def test_wasm_marginally_faster(self, results):
        # Table 10: ratios just below 1 (I/O-bound workload).
        for entry in results.values():
            assert 0.3 < entry["ratio"] < 1.25

    def test_text_generator_deterministic(self):
        assert make_text(512, seed=1) == make_text(512, seed=1)
        assert make_text(512, seed=1) != make_text(512, seed=2)

    def test_pattern_sets_differ(self):
        assert PATTERNS["en-us"] != PATTERNS["fr"]


class TestFfmpeg:
    @pytest.fixture(scope="class")
    def results(self):
        return FfmpegApp(frames=8).run()

    def test_checksums_match(self, results):
        assert results["wasm_checksum"] == results["js_checksum"]
        assert results["wasm_checksum"] > 0

    def test_parallel_wasm_wins_big(self, results):
        # Table 10: 0.275 ratio from WebWorker parallelism.
        assert results["ratio"] < 0.6

    def test_worker_count_matters(self):
        two = FfmpegApp(frames=8, workers=2).run()
        eight = FfmpegApp(frames=8, workers=8).run()
        assert eight["wasm_ms"] < two["wasm_ms"]
        assert eight["js_ms"] == pytest.approx(two["js_ms"], rel=0.01)
