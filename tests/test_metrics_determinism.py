"""Determinism of the count/cycle metrics: the deterministic (``det``)
slice of the registry must come out byte-identical

* between a serial sweep (``jobs=1``) and a parallel one (``jobs>1``),
  including when flaky cells are retried (failed attempts roll back);
* between a cold run and a memoizer-warm rerun of the same measurement
  (the DET counters replay from the memoized payload);
* between ``REPRO_FAST_INTERP=0`` and ``=1`` (covered at the opclass
  level here; per-op parity lives in test_profile_parity.py).

Also: the report tool renders a populated summary (smoke, via a real
subprocess the way CI invokes it).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.parallel import FaultPlan, run_sweep
from repro.obs import DET, get_registry, reset_registry

ROOT = Path(__file__).resolve().parent.parent

PROGRAM = """
double g[32];
int main() {
  double acc = 0.0;
  for (int i = 0; i < 32; i++) g[i] = i * 0.25;
  for (int i = 0; i < 32; i++) acc = acc + g[i] * 3.0;
  printf("%d", (int)acc);
  return 0;
}
"""


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    yield
    reset_registry()


def _measure_cell(opt_level):
    """Module-level worker: compile + run one cell, record metrics."""
    from repro.compilers import CheerpCompiler
    from repro.env import DESKTOP, chrome_desktop
    from repro.harness import PageRunner

    compiler = CheerpCompiler(linear_heap_size=1024 * 1024)
    artifact = compiler.compile_wasm(PROGRAM, opt_level=opt_level)
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=2)
    return runner.run_wasm(artifact).time_ms


def test_det_metrics_identical_serial_vs_parallel():
    items = ["O0", "O1", "O2", "O3"]

    serial = run_sweep(_measure_cell, items, jobs=1, sleep=lambda s: None)
    det_serial = get_registry().export([DET])

    reset_registry()
    parallel = run_sweep(_measure_cell, items, jobs=2, sleep=lambda s: None)
    det_parallel = get_registry().export([DET])

    assert serial.ok and parallel.ok
    assert serial.values == parallel.values
    assert det_serial            # the sweep recorded pass/measure counters
    assert json.dumps(det_serial, sort_keys=True) == \
        json.dumps(det_parallel, sort_keys=True)


def test_det_metrics_survive_flaky_retries():
    """A flaking cell's failed attempt must leave no metric residue in
    either execution mode: the rolled-back attempt makes serial and
    parallel registries agree exactly."""
    items = ["O0", "O1", "O2"]
    labels = ["a", "b", "c"]
    plan = FaultPlan({"b": "flake:1"})

    serial = run_sweep(_measure_cell, items, jobs=1, labels=labels,
                       fault_plan=plan, sleep=lambda s: None)
    det_serial = get_registry().export([DET])

    reset_registry()
    parallel = run_sweep(_measure_cell, items, jobs=3, labels=labels,
                         fault_plan=plan, sleep=lambda s: None)
    det_parallel = get_registry().export([DET])

    assert serial.ok and parallel.ok
    assert det_serial == det_parallel


def test_det_metrics_identical_cold_vs_memo_warm(tmp_path, monkeypatch):
    """With the result memoizer armed, a warm rerun serves measurements
    from the cache — and must still replay the same DET counters the
    cold run recorded (compile.pass counters ride the artifact, measure
    counters re-apply per run)."""
    from repro import cache as repro_cache
    from repro.compilers import CheerpCompiler
    from repro.env import DESKTOP, chrome_desktop
    from repro.harness import PageRunner

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
    repro_cache.configure(root=str(tmp_path))

    def one_run():
        compiler = CheerpCompiler(linear_heap_size=1024 * 1024)
        artifact = compiler.compile_wasm(PROGRAM, opt_level="O2")
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=2)
        return runner.run_wasm(artifact).time_ms

    cold_value = one_run()
    det_cold = get_registry().export([DET])

    reset_registry()
    warm_value = one_run()
    det_warm = get_registry().export([DET])

    assert cold_value == warm_value
    assert det_cold              # pass.* and measure.* counters present
    assert any(k.startswith("pass.") for k in det_cold)
    # Startup decomposition counters (modeled compile pipeline) must ride
    # the memoized payload like every other DET metric: same keys, same
    # bytes, whether the measurement ran live or replayed from cache.
    startup_cold = {k: v for k, v in det_cold.items()
                    if k.startswith("startup.")}
    startup_warm = {k: v for k, v in det_warm.items()
                    if k.startswith("startup.")}
    assert "startup.wasm.ttfr_cycles" in startup_cold
    assert "startup.wasm.startup_compile_cycles" in startup_cold
    assert any(k.startswith("startup.wasm.tier.") for k in startup_cold)
    assert json.dumps(startup_cold, sort_keys=True) == \
        json.dumps(startup_warm, sort_keys=True)
    assert det_cold == det_warm
    # And the warm run really was served from the caches.
    stats = repro_cache.get_cache().stats
    assert stats.hits > 0
    repro_cache.configure()      # restore a clean global cache


def test_det_metrics_identical_across_interpreter_tiers(monkeypatch):
    """Opclass-level DET parity between the reference ladder and the
    threaded tier, through the full runner path."""
    monkeypatch.setenv("REPRO_PROFILE", "1")

    exports = {}
    for fast in ("0", "1"):
        monkeypatch.setenv("REPRO_FAST_INTERP", fast)
        reset_registry()
        _measure_cell("O2")
        exports[fast] = get_registry().export([DET])

    assert any(k.startswith("opclass.wasm.") for k in exports["0"])
    assert exports["0"] == exports["1"]


def test_cached_result_replays_det_metrics(tmp_path, monkeypatch):
    """A memoized computation that records DET counters internally (the
    real-world app drivers, which compile inside ``compute``) replays
    exactly those counters on a warm serve — and only those: sched/wall
    entries reflect the actual (cached) execution."""
    from repro import cache as repro_cache
    from repro.cache import cached_result
    from repro.obs import SCHED, WALL

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RESULT_CACHE", "1")
    repro_cache.configure(root=str(tmp_path))
    calls = []

    def compute():
        calls.append(1)
        reg = get_registry()
        reg.counter_add("app.compiles", 3, DET)
        reg.counter_add("app.frac", 0.1, DET)
        reg.counter_add("app.cache_probes", 7, SCHED)
        reg.counter_add("app.wall_ms", 5.0, WALL)
        return {"ok": True}

    cold = cached_result("unit-app", ("k",), compute, replay_metrics=True)
    det_cold = get_registry().export([DET])

    reset_registry()
    warm = cached_result("unit-app", ("k",), compute, replay_metrics=True)
    det_warm = get_registry().export([DET])

    assert cold == warm == {"ok": True}
    assert len(calls) == 1                   # second serve was a hit
    assert det_cold == {"app.compiles": 3, "app.frac": 0.1}
    assert det_warm == det_cold
    # The compute's schedule/wallclock entries were *not* replayed (the
    # warm serve records its own cache.hits, which is the point: sched
    # metrics reflect the actual execution).
    exported = get_registry().export()
    assert "app.cache_probes" not in exported
    assert "app.wall_ms" not in exported
    repro_cache.configure()


def test_report_tool_renders_summary(tmp_path):
    summary = {
        "metrics": {
            "measure.wasm.runs": 3,
            "measure.wasm.reps": 6,
            "measure.time_ms_total": 1.5,
            "pass.dce.applied": 3,
            "pass.dce.rewrites": 7,
            "opclass.wasm.add.count": 100,
            "opclass.wasm.add.cycles": 100.0,
            "opclass.wasm.mul.count": 10,
            "opclass.wasm.mul.cycles": 30.0,
            "startup.wasm.decode_cycles": 120.0,
            "startup.wasm.startup_compile_cycles": 500.0,
            "startup.wasm.ttfr_cycles": 620.0,
            "startup.wasm.exec_cycles": 9000.0,
            "startup.wasm.tier.LiftOff.cycles": 500.0,
        },
        "startup_frontier": {
            "chrome-79": {"kind": "browser", "policies": {
                "default": {"ttfr_ms": 0.2, "exec_ms": 1.0,
                            "total_ms": 1.2, "steady_speed": 0.9},
                "eager": {"ttfr_ms": 0.6, "exec_ms": 0.8,
                          "total_ms": 1.4, "steady_speed": 1.1},
            }},
        },
        "metrics_unstable": {
            "cache.hits": 5, "cache.misses": 2, "cache.puts": 2,
            "sched.cells": 4, "sched.completed": 4, "sched.retries": 1,
        },
        "metrics_wall": {"pass.dce.wall_ms": 1.25},
    }
    path = tmp_path / "summary.json"
    path.write_text(json.dumps(summary))
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "report.py"), str(path)],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    out = result.stdout
    assert "Compile passes" in out
    assert "dce" in out
    assert "Opclass profile: wasm" in out
    assert "add" in out
    assert "Startup vs steady state: wasm" in out
    assert "time to first result" in out
    assert "compile tier LiftOff" in out
    assert "Startup frontier" in out
    assert "default / eager" in out
    assert "Cache / scheduler health" in out
    assert "71.4% hit rate" in out
    assert "1 retried attempt(s)" in out


def test_report_tool_degrades_without_metrics(tmp_path):
    path = tmp_path / "summary.json"
    path.write_text(json.dumps({"table2": {}}))
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "report.py"), str(path)],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    assert "no telemetry" in result.stdout


def test_failure_report_includes_health_lines():
    from repro.experiments.common import health_lines
    from repro.obs import SCHED

    reg = get_registry()
    reg.counter_add("cache.hits", 3, SCHED)
    reg.counter_add("cache.misses", 1, SCHED)
    reg.counter_add("sched.cells", 2, SCHED)
    reg.counter_add("sched.retries", 1, SCHED)
    lines = health_lines()
    assert any("cache health" in line and "3 hit(s)" in line
               for line in lines)
    assert any("scheduler health" in line and "1 retried" in line
               for line in lines)
