"""Per-opclass profiler parity: the reference interpreter ladders
(``REPRO_FAST_INTERP=0``), the prepare-once threaded tier
(``REPRO_CODEGEN=0``) and the generated-Python codegen tier (the
default) must record *identical* profiles — same per-function op-count
dicts, same call counts — for all three engines.  The profiles are
integer counts at matching charge points, so equality is exact, not
approximate.

Also covered: the wasm cycle decomposition invariant (every wasm op cost
is a dyadic rational, so ``sum(count × OP_COST)`` reproduces
``stats.cycles`` with no float error) and the profile plumbing through
the page runner (``Measurement.detail["profile"]``, opclass registry
counters, rep_details stripping).
"""

from __future__ import annotations

import pytest

from repro.engine.profdecode import decode_profile, opclass_fractions
from repro.obs import DET, get_registry, reset_registry

PROGRAM = """
double g[48];
int unused_global;
double scale(double x) { return x * 2.5; }
int main() {
  double acc = 0.0;
  int n = 6;
  unused_global = 3;
  for (int i = 0; i < 48; i++) g[i] = i * 0.5;
  for (int i = 0; i < 48; i++) {
    acc = acc + scale(g[i]) * (n * 2);
    if (i > 40) acc = acc - 1.0;
  }
  printf("%d", (int)acc);
  return 0;
}
"""


@pytest.fixture(autouse=True)
def _profiled(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "1")
    reset_registry()
    yield
    reset_registry()


TIERS = ("ref", "threaded", "codegen")


def _set_tier(monkeypatch, tier):
    monkeypatch.setenv("REPRO_FAST_INTERP", "0" if tier == "ref" else "1")
    monkeypatch.setenv("REPRO_CODEGEN", "1" if tier == "codegen" else "0")


def _wasm_profile(cheerp):
    from repro.engine.hostlib import wasm_host_imports
    from repro.wasm import WasmVM

    artifact = cheerp.compile_wasm(PROGRAM, opt_level="O2")
    output = []
    vm = WasmVM()
    inst = vm.instantiate(artifact.module, wasm_host_imports(output, None))
    inst.invoke("main")
    return inst._profile.to_dict(), inst.stats, output


def _js_profile(cheerp):
    from repro.harness import install_c_host
    from repro.jsengine import JsEngine

    artifact = cheerp.compile_js(PROGRAM, opt_level="O2")
    output = []
    engine = JsEngine()
    install_c_host(engine, output)
    engine.load_script(artifact.source)
    engine.call_global("main")
    return engine._profile.to_dict(), engine.stats, output


def _native_profile(llvm_x86):
    from repro.native.machine import _Machine

    artifact = llvm_x86.compile(PROGRAM, opt_level="Ofast")
    machine = _Machine(artifact.program)
    machine.call("main")
    return machine._profile.to_dict(), machine.stats, machine.stats.prints


@pytest.mark.parametrize("engine", ["wasm", "js", "native"])
def test_profiles_identical_across_interpreter_tiers(
        engine, cheerp, llvm_x86, monkeypatch):
    collect = {"wasm": lambda: _wasm_profile(cheerp),
               "js": lambda: _js_profile(cheerp),
               "native": lambda: _native_profile(llvm_x86)}[engine]
    _set_tier(monkeypatch, "ref")
    ref_profile, ref_stats, ref_out = collect()
    for tier in ("threaded", "codegen"):
        _set_tier(monkeypatch, tier)
        profile, stats, out = collect()
        assert ref_out == out
        assert ref_stats.cycles == stats.cycles
        assert ref_profile == profile          # exact dict equality
    assert ref_profile["calls"]                # call counting actually ran
    assert any(ref_profile["ops"].values())


def test_wasm_profile_decomposes_stats_cycles_exactly(cheerp, monkeypatch):
    """Every wasm op cost is a multiple of 0.25 and totals stay far below
    2**50, so the decoded per-opclass cycles must sum to *exactly* the
    interpreter's cycle counter — not approximately."""
    for tier in TIERS:
        _set_tier(monkeypatch, tier)
        profile, stats, _ = _wasm_profile(cheerp)
        decoded = decode_profile(profile)
        assert decoded["total_cycles"] == stats.cycles
        assert decoded["total_count"] == stats.instructions


def test_js_profile_splits_tiers(cheerp, monkeypatch):
    """A hot function that tiers up records ops under both the entry tier
    (bit 8 clear) and the optimizing tier (bit 8 set)."""
    _set_tier(monkeypatch, "codegen")
    profile, stats, _ = _js_profile(cheerp)
    keys = {int(k) for cells in profile["ops"].values() for k in cells}
    assert any(k < 256 for k in keys)           # entry-tier ops
    if stats.tier_ups:
        assert any(k >= 256 for k in keys)      # optimized-tier ops


def test_decode_profile_shapes(cheerp, monkeypatch):
    _set_tier(monkeypatch, "codegen")
    profile, _stats, _ = _wasm_profile(cheerp)
    decoded = decode_profile(profile)
    assert decoded["engine"] == "wasm"
    assert "main" in decoded["functions"]
    main = decoded["functions"]["main"]
    assert main["calls"] == 1
    assert main["opclasses"]
    for cls, row in decoded["opclasses"].items():
        assert row["count"] > 0
        assert row["cycles"] >= 0.0
    fracs = opclass_fractions(profile)
    assert set(fracs) == set(decoded["opclasses"])


def test_runner_attaches_profile_and_registry_counters(cheerp):
    from repro.env import DESKTOP, chrome_desktop
    from repro.harness import PageRunner

    artifact = cheerp.compile_wasm(PROGRAM, opt_level="O2")
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=2)
    result = runner.run_wasm(artifact)
    profile = result.detail["profile"]
    assert profile["engine"] == "wasm"
    # rep_details stay lean: the (identical) profile is kept once.
    assert all("profile" not in d for d in result.rep_details)
    exported = get_registry().export([DET])
    counts = {k: v for k, v in exported.items()
              if k.startswith("opclass.wasm.") and k.endswith(".count")}
    assert counts
    assert exported["measure.wasm.runs"] == 1
    assert exported["measure.wasm.reps"] == 2
    # Registry counters equal the decoded profile totals.
    for cls, (count, _cycles) in opclass_fractions(profile).items():
        assert exported[f"opclass.wasm.{cls}.count"] == count


def test_profiler_off_leaves_no_profile(cheerp, monkeypatch):
    from repro.env import DESKTOP, chrome_desktop
    from repro.harness import PageRunner

    monkeypatch.setenv("REPRO_PROFILE", "0")
    artifact = cheerp.compile_wasm(PROGRAM, opt_level="O2")
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=1)
    result = runner.run_wasm(artifact)
    assert "profile" not in result.detail
    assert not any(k.startswith("opclass.")
                   for k in get_registry().export())
