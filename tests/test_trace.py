"""Structured execution-trace tests: phase ordering, span accounting
against the measured execution time, and JSON round-tripping.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine.trace import ExecutionTrace
from repro.env import DESKTOP
from repro.env.browser import chrome_desktop
from repro.experiments.common import ExperimentContext
from repro.harness import PageRunner
from repro.jsengine import JsEngine
from repro.jsengine.config import JsEngineConfig
from repro.suites import all_benchmarks


@pytest.fixture(scope="module")
def traced_runs():
    ctx = ExperimentContext(quick=True, repetitions=1)
    bench = next(b for b in all_benchmarks() if b.name == "gemm")
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=1,
                        trace=True)
    return (runner.run_wasm(ctx.wasm(bench)),
            runner.run_js(ctx.js(bench)))


class TestTraceStructure:
    def test_emit_and_finalize_order_by_start(self):
        trace = ExecutionTrace("wasm")
        trace.emit("execute", 100.0, 50.0)
        trace.emit("decode", 0.0, 100.0, bytes=13)
        trace.finalize()
        assert [e.phase for e in trace.events] == ["decode", "execute"]
        assert trace.total_cycles() == 150.0
        assert trace.phase_cycles() == {"decode": 100.0, "execute": 50.0}

    def test_json_round_trip(self):
        trace = ExecutionTrace("js")
        trace.emit("parse", 0.0, 12.5, tokens=40)
        trace.emit("gc", 99.0, 8000.0)
        restored = ExecutionTrace.from_json(trace.to_json())
        assert restored.engine == "js"
        assert [e.to_dict() for e in restored.events] == \
            [e.to_dict() for e in trace.events]


class TestWasmTrace:
    def test_phase_ordering(self, traced_runs):
        wasm_m, _ = traced_runs
        events = ExecutionTrace.from_dict(wasm_m.detail["trace"]).events
        phases = [e.phase for e in events]
        assert phases.index("decode") < phases.index("compile")
        assert phases.index("compile") < phases.index("execute")
        assert phases[-1] == "page-overhead"
        starts = [e.start_cycles for e in events]
        assert starts == sorted(starts)
        # Contiguous timeline: each span begins where the previous ended.
        for prev, cur in zip(events, events[1:]):
            assert cur.start_cycles == pytest.approx(prev.end_cycles)

    def test_tier_up_only_after_threshold(self, traced_runs):
        wasm_m, _ = traced_runs
        events = ExecutionTrace.from_dict(wasm_m.detail["trace"]).events
        execute = next(e for e in events if e.phase == "execute")
        tier_ups = [e for e in events if e.phase == "tier-up"]
        threshold = chrome_desktop().wasm.tier_up_instructions
        assert execute.detail["instructions"] > threshold
        assert len(tier_ups) == 1
        assert tier_ups[0].detail["tier"] == "TurboFan"
        assert tier_ups[0].end_cycles <= execute.start_cycles

    def test_spans_sum_to_execution_time(self, traced_runs):
        wasm_m, _ = traced_runs
        trace = ExecutionTrace.from_dict(wasm_m.detail["trace"])
        assert trace.total_cycles() == pytest.approx(
            wasm_m.times_ms[0] * DESKTOP.cycles_per_ms, rel=1e-9)


class TestJsTrace:
    def test_phase_ordering(self, traced_runs):
        _, js_m = traced_runs
        events = ExecutionTrace.from_dict(js_m.detail["trace"]).events
        assert events[0].phase == "parse"
        assert events[0].start_cycles == 0.0
        assert events[-1].phase == "page-overhead"
        compile_event = next(e for e in events if e.phase == "compile")
        execute = next(e for e in events if e.phase == "execute")
        assert compile_event.start_cycles == events[0].cycles
        assert execute.start_cycles == pytest.approx(
            compile_event.start_cycles + compile_event.cycles +
            sum(e.cycles for e in events if e.phase == "tier-up"))
        for e in events:
            if e.phase == "tier-up":
                assert e.start_cycles >= execute.start_cycles

    def test_tier_up_events_match_stats(self, traced_runs):
        _, js_m = traced_runs
        events = ExecutionTrace.from_dict(js_m.detail["trace"]).events
        tier_ups = [e for e in events if e.phase == "tier-up"]
        assert len(tier_ups) == js_m.detail["tier_ups"]
        assert len(tier_ups) > 0

    def test_spans_sum_to_execution_time(self, traced_runs):
        _, js_m = traced_runs
        trace = ExecutionTrace.from_dict(js_m.detail["trace"])
        assert trace.total_cycles() == pytest.approx(
            js_m.times_ms[0] * DESKTOP.cycles_per_ms, rel=1e-9)

    def test_gc_pauses_become_events(self):
        cfg = replace(JsEngineConfig(), gc_trigger_bytes=20000)
        engine = JsEngine(cfg)
        engine.trace = ExecutionTrace("js")
        engine.load_script(
            "var a = [];"
            "for (var i = 0; i < 2000; i = i + 1) { a.push([i, i]); }")
        gc_events = [e for e in engine.trace.events if e.phase == "gc"]
        assert engine.heap.gc_runs > 0
        assert len(gc_events) == engine.heap.gc_runs
        assert sum(e.cycles for e in gc_events) == \
            engine.stats.gc_pause_cycles
        starts = [e.start_cycles for e in gc_events]
        assert starts == sorted(starts)


class TestTraceIsOptIn:
    def test_untraced_measurements_have_no_trace_detail(self):
        ctx = ExperimentContext(quick=True, repetitions=1)
        bench = next(b for b in all_benchmarks() if b.name == "gemm")
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=1)
        assert "trace" not in runner.run_js(ctx.js(bench)).detail
