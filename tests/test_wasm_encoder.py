"""Binary encoder: LEB128 properties and module structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm import (
    FuncType, Function, GlobalVar, WasmModule, encode_module,
    encode_sleb128, encode_uleb128,
)
from repro.wasm.encoder import decode_sleb128, decode_uleb128
from repro.wasm.instructions import Op, instr as I
from repro.wasm.module import DataSegment


@given(st.integers(min_value=0, max_value=1 << 64))
@settings(max_examples=200)
def test_uleb128_roundtrip(value):
    data = encode_uleb128(value)
    decoded, offset = decode_uleb128(data)
    assert decoded == value
    assert offset == len(data)


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
@settings(max_examples=200)
def test_sleb128_roundtrip(value):
    data = encode_sleb128(value)
    decoded, offset = decode_sleb128(data)
    assert decoded == value
    assert offset == len(data)


def test_uleb128_rejects_negative():
    with pytest.raises(ValueError):
        encode_uleb128(-1)


def test_uleb128_compact_for_small_values():
    assert len(encode_uleb128(0)) == 1
    assert len(encode_uleb128(127)) == 1
    assert len(encode_uleb128(128)) == 2


def _simple_module():
    module = WasmModule(name="m")
    body = [I(Op.LOCAL_GET, 0), I(Op.I32_CONST, 1), I(Op.I32_ADD)]
    module.add_function(Function(
        "inc", FuncType(("i32",), ("i32",)), [], body, exported=True))
    return module


class TestModuleEncoding:
    def test_magic_and_version(self):
        data = encode_module(_simple_module())
        assert data[:4] == b"\x00asm"
        assert data[4:8] == b"\x01\x00\x00\x00"

    def test_encoding_deterministic(self):
        assert encode_module(_simple_module()) == \
            encode_module(_simple_module())

    def test_size_grows_with_code(self):
        small = _simple_module()
        big = _simple_module()
        big.functions[0].body = big.functions[0].body * 50
        assert len(encode_module(big)) > len(encode_module(small))

    def test_globals_encoded(self):
        module = _simple_module()
        base = len(encode_module(module))
        module.globals.append(GlobalVar("g", "f64", True, 1.5))
        module.globals.append(GlobalVar("h", "i64", False, -3))
        assert len(encode_module(module)) > base

    def test_data_segment_encoded(self):
        module = _simple_module()
        base = len(encode_module(module))
        module.data.append(DataSegment(1024, b"\x01" * 100))
        assert len(encode_module(module)) >= base + 100

    def test_locals_run_length_compressed(self):
        many = _simple_module()
        many.functions[0].locals = ["i32"] * 40
        few = _simple_module()
        few.functions[0].locals = ["i32"]
        # 40 identical locals encode as one (count, type) run.
        assert len(encode_module(many)) <= len(encode_module(few)) + 2

    def test_f64_const_encoded_as_8_bytes(self):
        module = _simple_module()
        module.functions[0].body = [I(Op.F64_CONST, 1.25), I(Op.DROP),
                                    I(Op.LOCAL_GET, 0)]
        data = encode_module(module)
        import struct
        assert struct.pack("<d", 1.25) in data

    def test_imports_encoded(self):
        from repro.wasm.module import HostImport
        module = _simple_module()
        base = len(encode_module(module))
        module.imports.insert(0, HostImport(
            "env", "print", FuncType(("i32",), ())))
        # NOTE: call indices would shift in real code; size check only.
        assert len(encode_module(module)) > base
