"""Extension features and failure-injection robustness tests."""

import pytest

from repro.compilers import CheerpCompiler
from repro.errors import CompileError, ParseError, TrapError
from repro.wasm import WasmVM

from tests.conftest import TINY_C, TINY_C_CHECKSUM, run_wasm_main


class TestTailoredPipeline:
    """The §5 future-work extension: a Wasm-tailored -Owasm level."""

    def test_owasm_level_exists(self, cheerp):
        assert "Owasm" in cheerp.pipelines()

    def test_owasm_preserves_semantics(self, cheerp):
        artifact = cheerp.compile_wasm(TINY_C, opt_level="Owasm")
        outputs, _ = run_wasm_main(artifact.module)
        assert outputs[0] == pytest.approx(TINY_C_CHECKSUM)

    def test_owasm_avoids_vectorize_overhead(self, cheerp):
        o2 = cheerp.compile_wasm(TINY_C, opt_level="O2")
        owasm = cheerp.compile_wasm(TINY_C, opt_level="Owasm")
        _, o2_inst = run_wasm_main(o2.module)
        _, ow_inst = run_wasm_main(owasm.module)
        assert ow_inst.stats.instructions <= o2_inst.stats.instructions

    def test_owasm_enables_backend_cleanups(self, cheerp):
        artifact = cheerp.compile_wasm(TINY_C, opt_level="Owasm")
        assert artifact.meta["opt_level"] == "Owasm"


class TestFailureInjection:
    """Programs that go wrong must fail loudly, not silently."""

    def test_runtime_division_by_zero_traps(self, cheerp):
        source = """
        int main() {
          int zero = 0;
          int i;
          for (i = 0; i < 3; i++)
            zero = zero * 2;
          printf("%d", 7 / zero);
          return 0;
        }
        """
        artifact = cheerp.compile_wasm(source)
        with pytest.raises(TrapError, match="divide by zero"):
            run_wasm_main(artifact.module)

    def test_out_of_bounds_store_traps(self):
        # Past the committed linear memory (heap limit, §3.2).
        source = """
        int a[4];
        int main() {
          int i = 100000000;
          a[i] = 1;
          printf("%d", a[0]);
          return 0;
        }
        """
        cheerp = CheerpCompiler(linear_heap_size=65536)
        artifact = cheerp.compile_wasm(source)
        with pytest.raises(TrapError, match="out-of-bounds"):
            run_wasm_main(artifact.module)

    def test_malformed_source_is_parse_error(self, cheerp):
        with pytest.raises(ParseError):
            cheerp.compile_wasm("int main( { return 0; }")

    def test_unsupported_construct_reported(self, cheerp):
        with pytest.raises(ParseError):
            cheerp.compile_wasm("int main() { goto out; out: return 0; }")

    def test_unknown_opt_level_rejected(self, cheerp):
        with pytest.raises(KeyError):
            cheerp.compile_wasm(TINY_C, opt_level="O9")

    def test_infinite_loop_bounded_by_budget(self, cheerp):
        source = "int main() { while (1) { } return 0; }"
        artifact = cheerp.compile_wasm(source)
        vm = WasmVM(max_instructions=50000)
        from repro.harness.runner import wasm_host_imports
        instance = vm.instantiate(artifact.module,
                                  wasm_host_imports([], None))
        with pytest.raises(TrapError, match="budget"):
            instance.invoke("main")

    def test_js_engine_type_error_is_loud(self):
        from repro.jsengine import JsEngine
        from repro.jsengine.interpreter import JsRuntimeError
        engine = JsEngine()
        engine.load_script("function f() { return missing.prop; }")
        with pytest.raises(JsRuntimeError):
            engine.call_global("f")

    def test_heap_exhaustion_fails_grow(self):
        # memory.grow beyond max_pages returns -1 rather than trapping.
        from repro.wasm import (
            FuncType, Function, MemorySpec, WasmModule,
        )
        from repro.wasm.instructions import Op, instr as I
        module = WasmModule()
        module.memory = MemorySpec(min_pages=1, max_pages=2)
        body = [I(Op.I32_CONST, 100), I(Op.MEMORY_GROW)]
        module.add_function(Function("f", FuncType((), ("i32",)), [],
                                     body, exported=True))
        instance = WasmVM().instantiate(module)
        assert instance.invoke("f") == -1
