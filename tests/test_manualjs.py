"""Manually-written JavaScript programs (§4.1.2 / Table 9)."""

import hashlib

import pytest

from repro.harness import install_c_host
from repro.jsengine import JsEngine
from repro.manualjs import get_manual_program, manual_programs


def run_manual(name):
    program = get_manual_program(name)
    engine = JsEngine()
    install_c_host(engine, [])
    engine.load_script(program.source)
    return engine.call_global(program.entry), engine


class TestRegistry:
    def test_eleven_table9_rows(self):
        programs = manual_programs()
        assert len(programs) == 11
        names = {p.name for p in programs}
        assert "Heat-3d (W3C)" in names and "Heat-3d (math.js)" in names
        assert "SHA (W3C)" in names and "SHA (jsSHA)" in names

    def test_nine_distinct_benchmarks(self):
        assert len({p.benchmark for p in manual_programs()}) == 9

    def test_libraries_attributed(self):
        libraries = {p.library for p in manual_programs()}
        assert {"math.js", "jsSHA", "W3C", "plain"} <= libraries


class TestExecution:
    @pytest.mark.parametrize("name",
                             [p.name for p in manual_programs()])
    def test_runs_and_returns_number(self, name):
        result, _ = run_manual(name)
        assert isinstance(result, float)
        assert result == result  # not NaN

    def test_heat3d_variants_agree(self):
        w3c, _ = run_manual("Heat-3d (W3C)")
        mathjs, _ = run_manual("Heat-3d (math.js)")
        assert w3c == pytest.approx(mathjs)

    def test_sha_jssha_matches_hashlib(self):
        result, _ = run_manual("SHA (jsSHA)")
        v = 19088743
        message = bytearray()
        for _ in range(1280):
            v = (v * 69069 + 1234567) & 0xFFFFFFFF
            message.append((v >> 16) & 255)
        digest = hashlib.sha1(bytes(message)).digest()
        words = [int.from_bytes(digest[i:i + 4], "big")
                 for i in range(0, 20, 4)]
        expected = words[0] ^ words[1] ^ words[2] ^ words[3] ^ words[4]
        if expected >= 1 << 31:
            expected -= 1 << 32
        assert int(result) == expected

    def test_sha_w3c_uses_native_crypto(self):
        result, engine = run_manual("SHA (W3C)")
        # Native hashing leaves almost no interpreter arithmetic behind.
        profile = engine.stats.arithmetic_profile()
        jssha_result, jssha_engine = run_manual("SHA (jsSHA)")
        jssha_profile = jssha_engine.stats.arithmetic_profile()
        # (both run the message generator; only jsSHA runs 80-round
        # compression in JS)
        assert sum(profile.values()) < 0.5 * sum(jssha_profile.values())

    def test_w3c_sha_faster_than_jssha(self):
        _, w3c = run_manual("SHA (W3C)")
        _, jssha = run_manual("SHA (jsSHA)")
        assert w3c.total_cycles() < jssha.total_cycles()

    def test_manual_aes_matches_generated(self):
        """The hand-written AES and the Cheerp-compiled CHStone AES run
        the same cipher: same key schedule, same blocks, same xor."""
        from repro.compilers import CheerpCompiler
        from repro.suites import get_benchmark
        from tests.conftest import run_wasm_main
        result, _ = run_manual("AES")
        benchmark = get_benchmark("AES")
        defines = benchmark.defines("M")
        defines["BLOCKS"] = 5       # match the manual program
        cheerp = CheerpCompiler(linear_heap_size=512 * 1024)
        artifact = cheerp.compile_wasm(benchmark.source, defines, "O0",
                                       "AES")
        outputs, _ = run_wasm_main(artifact.module)
        assert int(result) == int(outputs[0])

    def test_manual_blowfish_matches_generated(self):
        from repro.compilers import CheerpCompiler
        from repro.suites import get_benchmark
        from tests.conftest import run_wasm_main
        result, _ = run_manual("BLOWFISH")
        benchmark = get_benchmark("BLOWFISH")
        defines = benchmark.defines("M")
        defines["BLOCKS"] = 40
        cheerp = CheerpCompiler(linear_heap_size=512 * 1024)
        artifact = cheerp.compile_wasm(benchmark.source, defines, "O0",
                                       "BLOWFISH")
        outputs, _ = run_wasm_main(artifact.module)
        assert int(result) == int(outputs[0])

    def test_mathjs_programs_allocate_on_js_heap(self):
        # Table 9's memory column: plain-array programs show multi-MB
        # heaps where typed-array (Cheerp) programs stay flat.
        _, engine = run_manual("3mm")
        assert engine.heap.devtools_bytes() > \
            engine.heap.baseline_bytes + 8 * 1024
