"""Validator: accept well-typed modules, reject ill-typed ones."""

import pytest

from repro.errors import ValidationError
from repro.wasm import FuncType, Function, GlobalVar, WasmModule, \
    validate_module
from repro.wasm.instructions import Op, instr as I
from repro.wasm.module import DataSegment, MemorySpec


def _module(body, params=(), results=(), locals_=None, globals_=None):
    module = WasmModule()
    for g in globals_ or []:
        module.globals.append(g)
    module.add_function(Function("f", FuncType(tuple(params),
                                               tuple(results)),
                                 list(locals_ or []), body, exported=True))
    return module


class TestAccepts:
    def test_empty_void_function(self):
        validate_module(_module([]))

    def test_balanced_arithmetic(self):
        validate_module(_module(
            [I(Op.I32_CONST, 1), I(Op.I32_CONST, 2), I(Op.I32_ADD)],
            results=("i32",)))

    def test_if_else_balanced(self):
        validate_module(_module([
            I(Op.LOCAL_GET, 0), I(Op.IF),
            I(Op.I32_CONST, 1), I(Op.RETURN),
            I(Op.ELSE), I(Op.I32_CONST, 2), I(Op.RETURN),
            I(Op.END),
            I(Op.I32_CONST, 0),
        ], params=("i32",), results=("i32",)))

    def test_loop_branches(self):
        validate_module(_module([
            I(Op.BLOCK), I(Op.LOOP),
            I(Op.LOCAL_GET, 0), I(Op.BR_IF, 1),
            I(Op.BR, 0),
            I(Op.END), I(Op.END),
        ], params=("i32",)))

    def test_mixed_types(self):
        validate_module(_module([
            I(Op.LOCAL_GET, 0), I(Op.F64_CONVERT_I32_S),
            I(Op.F64_CONST, 2.0), I(Op.F64_MUL),
            I(Op.I32_TRUNC_F64_S),
        ], params=("i32",), results=("i32",)))


class TestRejects:
    def test_stack_underflow(self):
        with pytest.raises(ValidationError):
            validate_module(_module([I(Op.I32_ADD)], results=("i32",)))

    def test_type_mismatch(self):
        with pytest.raises(ValidationError):
            validate_module(_module(
                [I(Op.I32_CONST, 1), I(Op.F64_CONST, 2.0), I(Op.I32_ADD)],
                results=("i32",)))

    def test_wrong_result_type(self):
        with pytest.raises(ValidationError):
            validate_module(_module([I(Op.F64_CONST, 1.0)],
                                    results=("i32",)))

    def test_leftover_values(self):
        with pytest.raises(ValidationError):
            validate_module(_module(
                [I(Op.I32_CONST, 1), I(Op.I32_CONST, 2)],
                results=("i32",)))

    def test_unknown_local(self):
        with pytest.raises(ValidationError):
            validate_module(_module([I(Op.LOCAL_GET, 3), I(Op.DROP)]))

    def test_branch_too_deep(self):
        with pytest.raises(ValidationError):
            validate_module(_module([I(Op.BLOCK), I(Op.BR, 5),
                                     I(Op.END)]))

    def test_unterminated_block(self):
        with pytest.raises(ValidationError):
            validate_module(_module([I(Op.BLOCK)]))

    def test_else_outside_if(self):
        with pytest.raises(ValidationError):
            validate_module(_module([I(Op.BLOCK), I(Op.ELSE),
                                     I(Op.END)]))

    def test_block_leaving_values(self):
        with pytest.raises(ValidationError):
            validate_module(_module([
                I(Op.BLOCK), I(Op.I32_CONST, 1), I(Op.END)]))

    def test_immutable_global_set(self):
        with pytest.raises(ValidationError):
            validate_module(_module(
                [I(Op.I32_CONST, 1), I(Op.GLOBAL_SET, 0)],
                globals_=[GlobalVar("g", "i32", mutable=False)]))

    def test_data_segment_exceeding_memory(self):
        module = _module([])
        module.memory = MemorySpec(min_pages=1)
        module.data.append(DataSegment(65530, b"\x00" * 100))
        with pytest.raises(ValidationError):
            validate_module(module)

    def test_call_argument_type_checked(self):
        module = WasmModule()
        module.add_function(Function(
            "callee", FuncType(("f64",), ("f64",)), [],
            [I(Op.LOCAL_GET, 0)], exported=False))
        module.add_function(Function(
            "caller", FuncType((), ("f64",)), [],
            [I(Op.I32_CONST, 1), I(Op.CALL, 0)], exported=True))
        with pytest.raises(ValidationError):
            validate_module(module)
