"""Concurrent access to one sharded cache directory, the bounded memory
layer, and the shared ``REPRO_*`` boolean-knob parser."""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time

import pytest

from repro.cache import ArtifactCache
from repro.cache.memo import RESULT_CACHE_ENV, results_enabled
from repro.cache.store import (
    CACHE_ENV, CACHE_MEM_ENV, disk_enabled_from_env, memory_cap_from_env,
)
from repro.obs import env_flag, env_int, parse_flag

OWN_PER_WORKER = 20


def _key(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _hammer(root, worker_id, shared_keys, queue):
    """One worker process: private puts/gets, contended puts on shared
    keys, and shard temp-sweeps interleaved with the writes."""
    cache = ArtifactCache(root=root, disk=True)
    try:
        for i in range(OWN_PER_WORKER):
            key = _key(f"own-{worker_id}-{i}")
            cache.put(key, {"owner": worker_id, "i": i})
            assert cache.get(key) == {"owner": worker_id, "i": i}
        for j, key in enumerate(shared_keys):
            # Every worker writes identical bytes: whichever atomic
            # replace wins, readers must only ever see this value.
            cache.put(key, {"shared": j})
            fresh = ArtifactCache(root=root, disk=True)  # skip memory layer
            assert fresh.get(key) == {"shared": j}
            for shard in fresh.shards()[:2]:
                fresh.sweep_tmp(max_age_s=3600.0, shard=shard)
        queue.put(("ok", worker_id))
    except BaseException as exc:  # report, don't hang the parent
        queue.put(("err", f"worker {worker_id}: "
                          f"{type(exc).__name__}: {exc}"))


class TestConcurrentStore:
    def test_parallel_put_get_sweep_share_one_directory(self, tmp_path):
        shared = [_key(f"shared-{j}") for j in range(8)]
        queue = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(
                target=_hammer, args=(str(tmp_path), w, shared, queue))
            for w in range(4)
        ]
        for proc in workers:
            proc.start()
        outcomes = [queue.get(timeout=120) for _ in workers]
        for proc in workers:
            proc.join(timeout=120)
        assert all(status == "ok" for status, _ in outcomes), outcomes

        # A fresh reader over the same directory sees every entry intact.
        reader = ArtifactCache(root=str(tmp_path), disk=True)
        for w in range(len(workers)):
            for i in range(OWN_PER_WORKER):
                assert reader.get(_key(f"own-{w}-{i}")) == \
                    {"owner": w, "i": i}
        for j, key in enumerate(shared):
            assert reader.get(key) == {"shared": j}
        assert reader.stats.misses == 0
        # sha256 keys spread across many two-hex-digit shard dirs, and no
        # worker leaked an in-flight temp file.
        assert len(reader.shards()) > 1
        assert reader.sweep_tmp(max_age_s=0.0) == 0

    def test_shard_scoped_sweep_leaves_other_shards_alone(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path), disk=True)
        cache.put("aa" + "0" * 62, 1)
        cache.put("bb" + "0" * 62, 2)
        old = time.time() - 7200
        orphans = {}
        for shard in ("aa", "bb"):
            path = os.path.join(cache.root, shard, "dead.pkl.tmp")
            with open(path, "wb") as handle:
                handle.write(b"x")
            os.utime(path, (old, old))
            orphans[shard] = path
        assert cache.sweep_tmp(max_age_s=3600.0, shard="aa") == 1
        assert not os.path.exists(orphans["aa"])
        assert os.path.exists(orphans["bb"])      # out of scope
        assert cache.sweep_tmp(max_age_s=3600.0, shard="bb") == 1
        assert cache.get("aa" + "0" * 62) == 1    # entries untouched
        assert cache.get("bb" + "0" * 62) == 2
        assert cache.shards() == ["aa", "bb"]


class TestMemoryCap:
    def test_lru_evicts_cold_end_with_exact_stats(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path), disk=False, memory_cap=2)
        cache.put("aa" + "0" * 62, "A")
        cache.put("bb" + "0" * 62, "B")
        assert cache.get("aa" + "0" * 62) == "A"  # refresh A's recency
        cache.put("cc" + "0" * 62, "C")           # evicts B (coldest)
        assert cache.stats.evictions == 1
        assert cache.get("aa" + "0" * 62) == "A"
        assert cache.get("cc" + "0" * 62) == "C"
        # With the disk layer off the evicted entry is an honest miss.
        assert cache.get("bb" + "0" * 62) is None
        assert cache.stats.hits == 3
        assert cache.stats.memory_hits == 3
        assert cache.stats.misses == 1
        assert cache.stats.puts == 3

    def test_evicted_entry_served_from_disk(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path), disk=True, memory_cap=1)
        cache.put("aa" + "0" * 62, "A")
        cache.put("bb" + "0" * 62, "B")           # evicts A from memory
        assert cache.stats.evictions == 1
        assert cache.get("aa" + "0" * 62) == "A"  # disk still serves it
        assert cache.stats.disk_hits == 1
        assert cache.get("aa" + "0" * 62) == "A"  # and it is resident again
        assert cache.stats.memory_hits == 1
        # Re-remembering A pushed B out (cap is 1) — B comes back from
        # disk too: the cap only ever shifts the memory/disk hit split.
        assert cache.get("bb" + "0" * 62) == "B"
        assert cache.stats.disk_hits == 2
        assert cache.stats.evictions == 3  # B's return pushed A out again
        assert cache.stats.misses == 0

    def test_zero_cap_is_unbounded(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path), disk=False, memory_cap=0)
        for i in range(100):
            cache.put(_key(f"k{i}"), i)
        assert cache.stats.evictions == 0
        assert all(cache.get(_key(f"k{i}")) == i for i in range(100))


class TestEnvKnobParsing:
    """One truthy/falsy grammar for every boolean ``REPRO_*`` knob."""

    @pytest.mark.parametrize("token", ["1", "on", "true", "yes",
                                       "ON", "True", " yes "])
    def test_truthy_tokens(self, token):
        assert parse_flag(token, default=False) is True
        assert parse_flag(token, default=True) is True

    @pytest.mark.parametrize("token", ["0", "off", "false", "no",
                                       "OFF", "False", " no "])
    def test_falsy_tokens(self, token):
        assert parse_flag(token, default=False) is False
        assert parse_flag(token, default=True) is False

    @pytest.mark.parametrize("token", [None, "", "   ", "maybe", "2"])
    def test_unset_empty_unrecognized_yield_default(self, token):
        assert parse_flag(token, default=False) is False
        assert parse_flag(token, default=True) is True

    def test_disk_cache_default_on(self, monkeypatch):
        # Pins the opt-out policy: REPRO_CACHE is on unless explicitly
        # disabled; garbage does not disable it.
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert disk_enabled_from_env() is True
        monkeypatch.setenv(CACHE_ENV, "maybe")
        assert disk_enabled_from_env() is True
        monkeypatch.setenv(CACHE_ENV, "off")
        assert disk_enabled_from_env() is False
        monkeypatch.setenv(CACHE_ENV, "1")
        assert disk_enabled_from_env() is True

    def test_result_cache_default_off(self, monkeypatch):
        # Pins the opt-in policy: REPRO_RESULT_CACHE needs an explicit
        # truthy token; garbage does not enable it.
        monkeypatch.delenv(RESULT_CACHE_ENV, raising=False)
        assert results_enabled() is False
        monkeypatch.setenv(RESULT_CACHE_ENV, "maybe")
        assert results_enabled() is False
        monkeypatch.setenv(RESULT_CACHE_ENV, "yes")
        assert results_enabled() is True
        monkeypatch.setenv(RESULT_CACHE_ENV, "0")
        assert results_enabled() is False

    def test_memory_cap_knob(self, monkeypatch):
        monkeypatch.delenv(CACHE_MEM_ENV, raising=False)
        assert memory_cap_from_env() == 0      # unbounded by default
        monkeypatch.setenv(CACHE_MEM_ENV, "128")
        assert memory_cap_from_env() == 128
        monkeypatch.setenv(CACHE_MEM_ENV, "-5")
        assert memory_cap_from_env() == 0      # clamped from below
        monkeypatch.setenv(CACHE_MEM_ENV, "lots")
        assert memory_cap_from_env() == 0      # garbage -> default

    def test_env_flag_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "on")
        assert env_flag("REPRO_TEST_KNOB", default=False) is True
        monkeypatch.setenv("REPRO_TEST_KNOB", "no")
        assert env_flag("REPRO_TEST_KNOB", default=True) is False
        monkeypatch.delenv("REPRO_TEST_KNOB")
        assert env_flag("REPRO_TEST_KNOB", default=True) is True

    def test_env_int_clamps_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "7")
        assert env_int("REPRO_TEST_INT", default=3, minimum=1) == 7
        monkeypatch.setenv("REPRO_TEST_INT", "0")
        assert env_int("REPRO_TEST_INT", default=3, minimum=1) == 1
        monkeypatch.setenv("REPRO_TEST_INT", "junk")
        assert env_int("REPRO_TEST_INT", default=3, minimum=1) == 3
