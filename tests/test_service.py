"""Benchmark-as-a-service end-to-end: request canonicalization, in-flight
dedupe, admission control, HTTP streaming, and the byte-equality contract
between streamed result lines and the direct ``run_all.py --cells`` path."""

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache import RESULT_CACHE_ENV, configure
from repro.obs import SCHED, TRACE_ENV, get_registry, reset_registry
from repro.service import (
    AdmissionError,
    CellSpec,
    RequestError,
    SweepServer,
    SweepService,
    canonicalize_request,
    direct_lines,
    get_json,
    get_text,
    post_shutdown,
    request_lines,
    result_line,
    run_cell,
)

ROOT = Path(__file__).resolve().parent.parent

#: One tiny cell — the cheapest real sweep the service can run.
TINY_PAYLOAD = {"benchmarks": ["atax"], "targets": ["wasm"],
                "opt_levels": ["O2"], "sizes": ["S"], "repetitions": 1}


@pytest.fixture()
def service_env(tmp_path, monkeypatch):
    """Isolated cache directory + memoization on + a fresh registry."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv(RESULT_CACHE_ENV, "1")
    monkeypatch.setenv("REPRO_JOBS", "1")
    cache = configure(root=str(tmp_path / "cache"), disk=True)
    reset_registry()
    yield cache
    reset_registry()
    configure()


class TestCanonicalization:
    def test_spellings_canonicalize_identically(self):
        # Scalar vs list, explicit defaults vs implied, shuffled order:
        # same cells, same keys — the basis of cross-client dedupe.
        a = canonicalize_request({"benchmarks": "atax", "targets": "wasm",
                                  "opt_levels": "O2"})
        b = canonicalize_request({"benchmarks": ["atax"],
                                  "targets": ["wasm"],
                                  "toolchains": ["cheerp"],
                                  "opt_levels": ["O2"], "sizes": ["M"],
                                  "profiles": ["chrome-desktop"],
                                  "repetitions": 2})
        assert a.cells == b.cells
        assert [s.cell_key() for s in a.cells] == \
            [s.cell_key() for s in b.cells]

    def test_cells_are_sorted_and_deduplicated(self):
        request = canonicalize_request(
            {"benchmarks": ["gemm", "atax", "atax"],
             "opt_levels": ["O3", "O0"]})
        assert list(request.cells) == sorted(set(request.cells))
        names = [spec.benchmark for spec in request.cells]
        assert names == sorted(names)
        assert len({spec.as_tuple() for spec in request.cells}) == \
            len(request.cells)

    def test_suite_expansion_and_default(self):
        quick = canonicalize_request({})
        assert quick.cells            # default suite: quick
        explicit = canonicalize_request({"suite": "quick"})
        assert explicit.cells == quick.cells
        poly = canonicalize_request({"suite": "polybench",
                                     "opt_levels": ["O2"]})
        allb = canonicalize_request({"suite": "all", "opt_levels": ["O2"]})
        assert len(allb.cells) > len(poly.cells)

    def test_invalid_target_toolchain_pairs_skipped(self):
        # cheerp can't produce x86; the x86 cells keep llvm-x86 only.
        request = canonicalize_request(
            {"benchmarks": ["atax"], "targets": ["wasm", "x86"],
             "toolchains": ["cheerp", "llvm-x86"]})
        pairs = {(s.target, s.toolchain) for s in request.cells}
        assert pairs == {("wasm", "cheerp"), ("x86", "llvm-x86")}

    @pytest.mark.parametrize("payload", [
        {"benchmarks": ["no-such-benchmark"]},
        {"suite": "nope"},
        {"targets": ["riscv"]},
        {"toolchains": ["gcc"]},
        {"opt_levels": ["O9"]},
        {"benchmarks": ["atax"], "sizes": ["XXL"]},
        {"profiles": ["netscape-desktop"]},
        {"repetitions": 0},
        {"repetitions": 11},
        {"repetitions": True},
        {"repetitions": "2"},
        {"benchmarks": []},
        {"targets": ["x86"], "toolchains": ["cheerp"]},  # empty product
        "not an object",
    ])
    def test_malformed_requests_rejected(self, payload):
        with pytest.raises(RequestError):
            canonicalize_request(payload)

    def test_request_cell_cap(self):
        with pytest.raises(RequestError, match="cap"):
            canonicalize_request({"suite": "all",
                                  "targets": ["wasm", "js"],
                                  "toolchains": ["cheerp", "emscripten"],
                                  "opt_levels": ["O0", "O1", "O2", "O3",
                                                 "O4", "Os", "Oz", "Ofast"],
                                  "profiles": ["chrome-desktop",
                                               "firefox-desktop",
                                               "edge-desktop",
                                               "chrome-mobile",
                                               "firefox-mobile",
                                               "edge-mobile"]})

    def test_cell_tuple_roundtrip(self):
        spec = CellSpec("atax", "wasm", "cheerp", "O2", "S",
                        "chrome-desktop", 1)
        assert CellSpec.from_tuple(spec.as_tuple()) == spec
        assert spec.label() == "atax|wasm|cheerp|O2|S|chrome-desktop|1"


class TestAdmissionControl:
    def _drive(self, coro):
        return asyncio.run(coro)

    def test_over_capacity_rejected(self, service_env):
        async def scenario():
            service = SweepService(jobs=1, max_cells=1)
            await service.start()
            try:
                with pytest.raises(AdmissionError, match="over capacity"):
                    service.admit({"benchmarks": ["atax", "gemm"],
                                   "sizes": ["S"], "repetitions": 1})
            finally:
                await service.stop()

        self._drive(scenario())
        assert get_registry().export([SCHED])["service.rejected"] == 1

    def test_client_budget_enforced_and_released(self, service_env):
        async def scenario():
            service = SweepService(jobs=1, client_budget=1,
                                   batch_window=30.0)  # hold cells pending
            await service.start()
            try:
                job = service.admit(dict(TINY_PAYLOAD, client="alice"))
                with pytest.raises(AdmissionError, match="budget"):
                    service.admit(dict(TINY_PAYLOAD, client="alice"))
                # Another client has its own budget...
                other = service.admit(dict(TINY_PAYLOAD, client="bob"))
                other.close()
                # ... and closing the job releases alice's.
                job.close()
                service.admit(dict(TINY_PAYLOAD, client="alice")).close()
            finally:
                await service.stop()

        self._drive(scenario())

    def test_stop_settles_stranded_futures(self, service_env):
        async def scenario():
            service = SweepService(jobs=1, batch_window=30.0)
            await service.start()
            job = service.admit(TINY_PAYLOAD)
            await service.stop()
            status, info = job.futures[0].result()
            assert status == "failed"
            assert info["error"] == "ServiceStopped"
            job.close()

        self._drive(scenario())


class TestDedupe:
    """Two identical concurrent requests → one sweep execution."""

    def test_concurrent_identical_requests_share_one_execution(
            self, service_env):
        async def scenario():
            service = SweepService(jobs=1, batch_window=0.01)
            await service.start()
            try:
                # Admitted back-to-back on one loop turn: the second
                # request can only ever see the first's in-flight futures.
                job1 = service.admit(TINY_PAYLOAD)
                job2 = service.admit(TINY_PAYLOAD)
                assert job1.deduped == 0 and len(job1.new_keys) == 1
                assert job2.deduped == 1 and not job2.new_keys
                assert job2.futures[0] is job1.futures[0]
                (status1, value1), = await asyncio.gather(*job1.futures)
                (status2, value2), = await asyncio.gather(*job2.futures)
                job1.close()
                job2.close()
                return (status1, value1), (status2, value2)
            finally:
                await service.stop()

        (status1, value1), (status2, value2) = asyncio.run(scenario())
        assert status1 == status2 == "ok"
        assert value1 == value2
        counters = get_registry().export([SCHED])
        # The scheduler ran the cell exactly once; the dedupe is visible.
        assert counters["sched.cells"] == 1
        assert counters["service.cells.requested"] == 2
        assert counters["service.cells.deduped"] == 1
        assert counters["service.sweeps"] == 1

    def test_warm_cell_served_without_scheduling(self, service_env):
        spec = canonicalize_request(TINY_PAYLOAD).cells[0]
        run_cell(spec)                      # populate the result cache
        reset_registry()

        async def scenario():
            service = SweepService(jobs=1, batch_window=0.01)
            await service.start()
            try:
                job = service.admit(TINY_PAYLOAD)
                (status, value), = await asyncio.gather(*job.futures)
                job.close()
                return status, value
            finally:
                await service.stop()

        status, value = asyncio.run(scenario())
        assert status == "warm"
        assert value == run_cell(spec)      # identical memoized payload
        counters = get_registry().export([SCHED])
        assert counters["service.cells.warm"] == 1
        assert counters.get("sched.cells", 0) == 0   # never scheduled
        assert counters["cache.hits"] >= 1


class TestHttpServer:
    def _run_server(self, scenario, **server_kwargs):
        async def drive():
            server = SweepServer(host="127.0.0.1", port=0, jobs=1,
                                 batch_window=0.01, **server_kwargs)
            await server.start()
            loop = asyncio.get_running_loop()
            try:
                return await scenario(server, loop)
            finally:
                await server.stop()

        return asyncio.run(drive())

    def test_healthz_stats_and_errors(self, service_env):
        async def scenario(server, loop):
            host, port = server.host, server.port

            def probe():
                health = get_json(host, port, "/healthz")
                stats = get_json(host, port, "/stats")
                codes = {}
                from repro.service.client import ServiceError
                for path, payload in [("/nope", None),
                                      ("/sweep", {"targets": ["riscv"]})]:
                    try:
                        if payload is None:
                            get_json(host, port, path)
                        else:
                            list(request_lines(host, port, payload))
                    except ServiceError as exc:
                        codes[path] = exc.status
                return health, stats, codes

            return await loop.run_in_executor(None, probe)

        health, stats, codes = self._run_server(scenario)
        assert health == {"ok": True}
        assert stats["limits"]["batch"] >= 1
        assert "store" in stats and "counters" in stats
        assert codes == {"/nope": 404, "/sweep": 400}

    def test_http_429_on_admission_reject(self, service_env):
        async def scenario(server, loop):
            from repro.service.client import ServiceError
            host, port = server.host, server.port

            def probe():
                try:
                    list(request_lines(
                        host, port, {"benchmarks": ["atax", "gemm"],
                                     "sizes": ["S"], "repetitions": 1}))
                except ServiceError as exc:
                    return exc.status
                return None

            return await loop.run_in_executor(None, probe)

        assert self._run_server(scenario, max_cells=1) == 429

    def test_stream_matches_direct_path_and_dedupes(self, service_env,
                                                    tmp_path):
        payload = dict(TINY_PAYLOAD, progress=True)

        async def scenario(server, loop):
            host, port = server.host, server.port

            def fetch():
                return list(request_lines(host, port, payload))

            # Two concurrent identical requests over HTTP.
            streams = await asyncio.gather(
                loop.run_in_executor(None, fetch),
                loop.run_in_executor(None, fetch))
            # Futures settle from the scheduler's on_result hook, which
            # can run before the sweep merges its sched.* counters —
            # poll until the batch's bookkeeping lands.
            for _ in range(100):
                stats = await loop.run_in_executor(
                    None, lambda: get_json(host, port, "/stats"))
                if "sched.cells" in stats["counters"]:
                    break
                await asyncio.sleep(0.05)
            return streams, stats

        (stream_a, stream_b), stats = self._run_server(scenario)

        def events(stream):
            return [json.loads(line) for line in stream]

        def results(stream):
            return [line for line in stream
                    if json.loads(line).get("event") == "result"]

        # Both streams open, carry one result line each, and close.
        for stream in (stream_a, stream_b):
            kinds = [e["event"] for e in events(stream)]
            assert kinds[0] == "accepted" and kinds[-1] == "done"
            assert kinds.count("result") == 1
            assert events(stream)[-1]["completed"] == 1
        # Progress lines carry the scheduler lifecycle for one of the
        # two requests (the one whose cells actually ran).
        stages = [e["stage"] for e in
                  events(stream_a) + events(stream_b)
                  if e["event"] == "progress"]
        assert "cell" in stages
        # The cell executed once server-wide; the twin was deduped
        # against the in-flight future (or served memo-warm if it lost
        # the race) — never re-executed.
        counters = stats["counters"]
        assert counters["sched.cells"] == 1
        assert counters["service.cells.requested"] == 2
        assert counters.get("service.cells.deduped", 0) + \
            counters.get("service.cells.warm", 0) == 1
        assert results(stream_a) == results(stream_b)

        # Byte-equality contract: the streamed result lines equal the
        # in-process direct path...
        cells = canonicalize_request(payload).cells
        direct = [line.encode("utf-8") for line in direct_lines(cells)]
        assert results(stream_a) == direct
        # ... and the run_all.py --cells reference subprocess.
        spec_file = tmp_path / "request.json"
        spec_file.write_text(json.dumps(payload))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(ROOT / "src"), str(ROOT)])
        proc = subprocess.run(
            [sys.executable, str(ROOT / "results" / "run_all.py"),
             "--cells", str(spec_file)],
            capture_output=True, timeout=570, env=env, cwd=str(ROOT))
        assert proc.returncode == 0, proc.stderr.decode()
        assert proc.stdout.splitlines() == results(stream_a)

    def test_shutdown_endpoint_stops_server(self, service_env):
        async def drive():
            server = SweepServer(host="127.0.0.1", port=0, jobs=1)
            await server.start()
            loop = asyncio.get_running_loop()
            ack = await loop.run_in_executor(
                None, lambda: post_shutdown(server.host, server.port))
            await asyncio.wait_for(server.serve_until_stopped(), timeout=30)
            return ack

        assert asyncio.run(drive()) == {"stopping": True}


class TestTracing:
    """Trace propagation over HTTP: per-request routing of progress
    lines, id stamping under ``REPRO_TRACE=1``, and ``/metrics``."""

    _run_server = TestHttpServer._run_server

    def test_overlapping_streams_do_not_crosstalk(self, service_env):
        # Two different requests stream concurrently through one server;
        # progress lines are routed by trace id, so neither stream may
        # ever carry the other request's cells.
        payload_a = dict(TINY_PAYLOAD, progress=True)
        payload_b = dict(TINY_PAYLOAD, benchmarks=["gemm"], progress=True)

        async def scenario(server, loop):
            host, port = server.host, server.port
            return await asyncio.gather(
                loop.run_in_executor(None, lambda: list(
                    request_lines(host, port, payload_a))),
                loop.run_in_executor(None, lambda: list(
                    request_lines(host, port, payload_b))))

        stream_a, stream_b = self._run_server(scenario)

        def progress(stream):
            return [json.loads(line) for line in stream
                    if json.loads(line).get("event") == "progress"]

        labels_a = [e["label"] for e in progress(stream_a)]
        labels_b = [e["label"] for e in progress(stream_b)]
        assert labels_a and labels_b      # both saw their own lifecycle
        assert all("atax" in label for label in labels_a)
        assert all("gemm" in label for label in labels_b)
        # Tracing off: no trace fields leak into any streamed line.
        for line in stream_a + stream_b:
            record = json.loads(line)
            assert "trace" not in record
            assert "trace_id" not in record

    def test_traced_stream_stamps_linked_ids(self, service_env,
                                             monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        payload = dict(TINY_PAYLOAD, progress=True)

        async def scenario(server, loop):
            host, port = server.host, server.port
            return await loop.run_in_executor(
                None, lambda: list(request_lines(host, port, payload)))

        events = [json.loads(line) for line in self._run_server(scenario)]
        accepted, done = events[0], events[-1]
        assert accepted["event"] == "accepted" and done["event"] == "done"
        root = accepted["trace"]
        assert set(root) == {"trace_id", "span_id"}
        assert done["trace"] == root
        # Result lines carry the per-cell span of the same trace.
        results = [e for e in events if e["event"] == "result"]
        assert results
        for record in results:
            assert record["trace"]["trace_id"] == root["trace_id"]
            assert record["trace"]["span_id"] != root["span_id"]
        # Progress lines link cell spans back to the request root.
        progress = [e for e in events if e["event"] == "progress"]
        assert progress
        for record in progress:
            assert record["trace_id"] == root["trace_id"]
            assert record["parent_span_id"] == root["span_id"]

    def test_metrics_endpoint_scrapes_counters(self, service_env):
        async def scenario(server, loop):
            host, port = server.host, server.port

            def fetch():
                return list(request_lines(host, port, TINY_PAYLOAD))

            await loop.run_in_executor(None, fetch)
            # Futures settle before the sweep merges its sched.*
            # counters; poll until the batch bookkeeping lands.
            text = ""
            for _ in range(100):
                text = await loop.run_in_executor(
                    None, lambda: get_text(host, port, "/metrics"))
                if "repro_sched_retries" in text:
                    break
                await asyncio.sleep(0.05)
            return text

        text = self._run_server(scenario)
        assert text.endswith("\n")
        assert "# TYPE repro_service_requests counter" in text
        assert 'repro_service_requests{stability="sched"} 1' in text
        assert 'repro_service_cells_requested{stability="sched"} 1' in text
        # The retry counter is registered even on clean sweeps so
        # scrapers always see the series.
        assert 'repro_sched_retries{stability="sched"} 0' in text
        # Store stats and scheduler-health gauges ride along.
        assert "# TYPE repro_store_hits gauge" in text
        assert "# TYPE repro_store_misses gauge" in text
        assert "repro_service_outstanding_cells 0" in text
        assert "repro_service_inflight_cells 0" in text


class TestResultLineContract:
    def test_result_line_is_canonical_json(self, service_env):
        spec = canonicalize_request(TINY_PAYLOAD).cells[0]
        value = run_cell(spec)
        line = result_line(spec, value)
        record = json.loads(line)
        assert record["event"] == "result"
        assert record["cell"] == spec.as_dict()
        assert record["key"] == spec.cell_key()
        # Canonical serialization: re-dumping the parsed record with
        # sorted keys reproduces the line byte-for-byte.
        assert json.dumps(record, sort_keys=True) == line


# Tier-1 gate: the full start → request → shutdown loop stays runnable.

class TestServiceSmoke:
    def test_service_smoke_gate(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(ROOT / "src"), str(ROOT)])
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "--smoke"],
            capture_output=True, text=True, timeout=570, env=env,
            cwd=str(ROOT))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "smoke: ok" in result.stdout
