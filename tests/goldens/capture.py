"""Regenerate the golden-parity fixtures in this directory.

The goldens pin the *exact* outputs (rendered text plus the repr of every
summary float) of the three experiments the engine-core refactor touches
most: ``jit_tiers`` (Table 7), ``browsers`` (Table 8), and ``opt_levels``
(Table 2 / Fig. 5).  ``tests/test_golden_parity.py`` recomputes them live
and compares byte-for-byte, so any refactor that perturbs a single cycle
of the shared tiering/cost model fails loudly.

Run from the repo root (takes a few minutes on a cold compile cache):

    PYTHONPATH=src REPRO_RESULT_CACHE=0 python tests/goldens/capture.py
"""

import json
import os
import sys

os.environ["REPRO_RESULT_CACHE"] = "0"

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from golden_config import (  # noqa: E402
    golden_browsers, golden_jit_tiers, golden_opt_levels,
)

HERE = os.path.dirname(os.path.abspath(__file__))


def save(name, payload):
    path = os.path.join(HERE, name + ".json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {path}")


def main():
    save("jit_tiers", golden_jit_tiers())
    save("browsers", golden_browsers())
    save("opt_levels", golden_opt_levels())


if __name__ == "__main__":
    main()
