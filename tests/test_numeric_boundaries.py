"""Differential numeric-boundary tests: the Wasm VM and the native
register machine, fed the *same IR* through their real backends, must
agree on both the value and the trap behavior at the edges Jangda et
al. show dominate Wasm/native divergence — f64→int truncation limits,
shift counts at and past the mask, and the ±2^31 / ±2^63 extremes."""

import math

import pytest

from repro.backends import generate_wasm, generate_x86
from repro.engine.hostlib import wasm_host_imports
from repro.errors import TrapError
from repro.ir import EBin, ECast, EConst, ELocal, Function, Module, SReturn
from repro.native import execute_program
from repro.wasm import WasmVM, validate_module

TRAP = "trap"

I32_MIN, I32_MAX = -(1 << 31), (1 << 31) - 1
I64_MIN, I64_MAX = -(1 << 63), (1 << 63) - 1


def _module(fn):
    module = Module("boundaries")
    module.functions[fn.name] = fn
    return module


def _cast_fn(src_t, dst_t):
    """``dst_t f(src_t x) { return (dst_t)x; }``"""
    x = ELocal("x", src_t)
    return _module(Function("f", [("x", src_t)], dst_t,
                            body=[SReturn(ECast(x, dst_t))],
                            exported=True))


def _shift_fn(op, value_t):
    """``value_t f(value_t x, value_t k) { return x <op> k; }``"""
    x = ELocal("x", value_t)
    k = ELocal("k", value_t)
    return _module(Function("f", [("x", value_t), ("k", value_t)],
                            value_t,
                            body=[SReturn(EBin(op, x, k, value_t))],
                            exported=True))


def _wasm_outcome(module, args):
    wasm = generate_wasm(module)
    validate_module(wasm)
    instance = WasmVM().instantiate(wasm, wasm_host_imports([], None))
    try:
        return instance.invoke("f", *args)
    except TrapError:
        return TRAP


def _native_outcome(module, args):
    program = generate_x86(module)
    try:
        return execute_program(program, "f", args)[0]
    except TrapError:
        return TRAP


def _differential(module, args):
    """Run the same IR through both engines; they must agree exactly."""
    wasm = _wasm_outcome(module, args)
    native = _native_outcome(module, args)
    assert wasm == native, (f"engines disagree for args {args!r}: "
                            f"wasm={wasm!r} native={native!r}")
    return wasm


# ---------------------------------------------------------------------------
# f64 -> int truncation limits
# ---------------------------------------------------------------------------

#: (input, expected outcome) for ``(int)(double)`` — both boundary doubles
#: around 2^31 and the one representable below -2^31 - 1.
F64_TO_I32_CASES = [
    (0.0, 0),
    (-1.5, -1),
    (float(I32_MAX), I32_MAX),
    (math.nextafter(float(1 << 31), 0.0), I32_MAX),   # 2147483647.9999998
    (float(1 << 31), TRAP),                           # 2^31: out of range
    (float(I32_MIN), I32_MIN),                        # -2^31 is valid
    (-2147483648.5, I32_MIN),                         # truncates up
    (math.nextafter(-2147483649.0, 0.0), I32_MIN),
    (-2147483649.0, TRAP),                            # trunc = -2^31 - 1
    (math.nan, TRAP),
    (math.inf, TRAP),
    (-math.inf, TRAP),
]

#: Around ±2^63 double spacing is 2048, so the interesting inputs are the
#: exactly-representable powers and their floating-point neighbours.
F64_TO_I64_CASES = [
    (0.0, 0),
    (float(I64_MIN), I64_MIN),                        # -2^63 is valid
    (math.nextafter(float(I64_MIN), -math.inf), TRAP),
    (math.nextafter(float(1 << 63), 0.0), 9223372036854774784),
    (float(1 << 63), TRAP),                           # 2^63: out of range
    (math.nan, TRAP),
    (math.inf, TRAP),
    (-math.inf, TRAP),
]


class TestTruncationBoundaries:
    @pytest.mark.parametrize("value,expected", F64_TO_I32_CASES,
                             ids=[repr(v) for v, _ in F64_TO_I32_CASES])
    def test_f64_to_i32(self, value, expected):
        assert _differential(_cast_fn("f64", "i32"), (value,)) == expected

    @pytest.mark.parametrize("value,expected", F64_TO_I64_CASES,
                             ids=[repr(v) for v, _ in F64_TO_I64_CASES])
    def test_f64_to_i64(self, value, expected):
        assert _differential(_cast_fn("f64", "i64"), (value,)) == expected


# ---------------------------------------------------------------------------
# Shifts: counts 0 / 31 / 32 / 63 and sign-boundary operands
# ---------------------------------------------------------------------------

SHIFT_COUNTS_32 = [0, 1, 31, 32, 33, 63]
SHIFT_VALUES_32 = [0, 1, -1, I32_MAX, I32_MIN, 0x55555555]
SHIFT_COUNTS_64 = [0, 1, 63, 64, 127]
SHIFT_VALUES_64 = [0, 1, -1, I64_MAX, I64_MIN]


def _wrap(v, bits):
    v &= (1 << bits) - 1
    return v - (1 << bits) if v >> (bits - 1) else v


class TestShiftBoundaries:
    @pytest.mark.parametrize("count", SHIFT_COUNTS_32)
    @pytest.mark.parametrize("value", SHIFT_VALUES_32)
    def test_i32_shr_u(self, value, count):
        result = _differential(_shift_fn(">>", "u32"), (value, count))
        assert result == _wrap((value & 0xFFFFFFFF) >> (count & 31), 32)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_32)
    @pytest.mark.parametrize("value", SHIFT_VALUES_32)
    def test_i32_shr_s(self, value, count):
        result = _differential(_shift_fn(">>", "i32"), (value, count))
        assert result == value >> (count & 31)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_32)
    @pytest.mark.parametrize("value", SHIFT_VALUES_32)
    def test_i32_shl(self, value, count):
        result = _differential(_shift_fn("<<", "i32"), (value, count))
        assert result == _wrap(value << (count & 31), 32)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_64)
    @pytest.mark.parametrize("value", SHIFT_VALUES_64)
    def test_i64_shr_u(self, value, count):
        result = _differential(_shift_fn(">>", "u64"), (value, count))
        assert result == _wrap(
            (value & 0xFFFFFFFFFFFFFFFF) >> (count & 63), 64)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_64)
    @pytest.mark.parametrize("value", SHIFT_VALUES_64)
    def test_i64_shl(self, value, count):
        result = _differential(_shift_fn("<<", "i64"), (value, count))
        assert result == _wrap(value << (count & 63), 64)


# ---------------------------------------------------------------------------
# The VM's signed-i32 stack invariant
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# Three-tier probe: reference ladder vs threaded vs codegen
# ---------------------------------------------------------------------------

#: (REPRO_FAST_INTERP, REPRO_CODEGEN) per execution tier.
TIERS = (("0", "0"), ("1", "0"), ("1", "1"))


def _three_tier(outcome_fn, module, args, monkeypatch):
    """Run one backend across all three execution tiers; every tier must
    produce the same value (or the same trap)."""
    results = []
    for fast, cg in TIERS:
        monkeypatch.setenv("REPRO_FAST_INTERP", fast)
        monkeypatch.setenv("REPRO_CODEGEN", cg)
        results.append(outcome_fn(module, args))
    normed = [repr(r) for r in results]
    assert normed[0] == normed[1] == normed[2], (
        f"tiers disagree for args {args!r}: ref={normed[0]} "
        f"threaded={normed[1]} codegen={normed[2]}")
    return results[0]


def _rotl_fn():
    """The C rotate idiom ``(x << n) | (x >> (32 - n))`` on u32 — both
    shift counts pass through the engines' ``& 31`` masking, so the idiom
    is total for every count including 0, >= 32, and negative."""
    x = ELocal("x", "u32")
    n = ELocal("n", "u32")
    left = EBin("<<", x, n, "u32")
    right = EBin(">>", x, EBin("-", EConst(32, "u32"), n, "u32"), "u32")
    return _module(Function("f", [("x", "u32"), ("n", "u32")], "u32",
                            body=[SReturn(EBin("|", left, right, "u32"))],
                            exported=True))


def _py_rotl32(value, count):
    u, b = value & 0xFFFFFFFF, count & 31
    v = ((u << b) | (u >> (32 - b))) & 0xFFFFFFFF if b else u
    return _wrap(v, 32)


class TestThreeTierRotates:
    """Rotate counts at and past the width, and negative, through the
    real IR backends on every tier of both engines."""

    @pytest.mark.parametrize("count", [0, 1, 31, 32, 33, 63, -1, -31])
    @pytest.mark.parametrize("value", [0, 1, -1, I32_MIN, 0x12345678])
    def test_rotl_idiom(self, value, count, monkeypatch):
        module = _rotl_fn()
        # n == 0 makes the idiom's right shift count 32 & 31 == 0, i.e.
        # x | x — still rotl(x, 0).  Expected value mirrors the VM's
        # rotl masking exactly.
        expected = _py_rotl32(value, count)
        wasm = _three_tier(_wasm_outcome, module, (value, count),
                           monkeypatch)
        native = _three_tier(_native_outcome, module, (value, count),
                             monkeypatch)
        assert wasm == native == expected


class TestThreeTierBitcounts:
    """clz/ctz/popcnt only exist as Wasm opcodes (no IR spelling), so
    they run as direct modules across the VM's three tiers."""

    def _bitcount_module(self, opname):
        from repro.wasm import FuncType, Function as WFunction, WasmModule
        from repro.wasm.instructions import Op, instr as I
        module = WasmModule()
        module.add_function(WFunction(
            "f", FuncType(("i32",), ("i32",)), [],
            [I(Op.LOCAL_GET, 0), I(getattr(Op, opname))], exported=True))
        validate_module(module)
        return module

    @pytest.mark.parametrize("opname,value,expected", [
        ("I32_CLZ", 0, 32), ("I32_CLZ", -1, 0), ("I32_CLZ", 1, 31),
        ("I32_CLZ", I32_MIN, 0),
        ("I32_CTZ", 0, 32), ("I32_CTZ", -1, 0), ("I32_CTZ", 1, 0),
        ("I32_CTZ", I32_MIN, 31),
        ("I32_POPCNT", 0, 0), ("I32_POPCNT", -1, 32),
        ("I32_POPCNT", I32_MIN, 1), ("I32_POPCNT", 0x55555555, 16),
    ])
    def test_bitcount_all_tiers(self, opname, value, expected,
                                monkeypatch):
        module = self._bitcount_module(opname)

        def outcome(mod, args):
            instance = WasmVM().instantiate(mod, wasm_host_imports([], None))
            return instance.invoke("f", *args)

        assert _three_tier(outcome, module, (value,),
                           monkeypatch) == expected


class TestThreeTierCanonicalization:
    """shl/shr_s results must stay in the canonical signed form on every
    tier — a raw unsigned leak shows up the moment the value feeds a
    signed compare."""

    @pytest.mark.parametrize("value,count", [
        (1, 31), (-1, 0), (I32_MIN, 0), (0x40000000, 1), (-1, 31),
    ])
    def test_shl_feeds_signed_compare(self, value, count, monkeypatch):
        x = ELocal("x", "i32")
        k = ELocal("k", "i32")
        cmp = EBin("<", EBin("<<", x, k, "i32"), EConst(0, "i32"), "i32")
        module = _module(Function("f", [("x", "i32"), ("k", "i32")], "i32",
                                  body=[SReturn(cmp)], exported=True))
        expected = 1 if _wrap(value << (count & 31), 32) < 0 else 0
        wasm = _three_tier(_wasm_outcome, module, (value, count),
                           monkeypatch)
        native = _three_tier(_native_outcome, module, (value, count),
                             monkeypatch)
        assert wasm == native == expected

    @pytest.mark.parametrize("value,count", [(-1, 1), (I32_MIN, 31),
                                             (-2, 63)])
    def test_shr_s_stays_negative(self, value, count, monkeypatch):
        module = _shift_fn(">>", "i32")
        expected = value >> (count & 31)
        wasm = _three_tier(_wasm_outcome, module, (value, count),
                           monkeypatch)
        native = _three_tier(_native_outcome, module, (value, count),
                             monkeypatch)
        assert wasm == native == expected

    @pytest.mark.parametrize("value,expected", [
        (float(1 << 31), TRAP), (-2147483649.0, TRAP), (math.nan, TRAP),
        (float(I32_MIN), I32_MIN),
    ])
    def test_trunc_traps_all_tiers(self, value, expected, monkeypatch):
        """Trap agreement: every tier of every engine traps (or not) on
        the same truncation input."""
        module = _cast_fn("f64", "i32")
        wasm = _three_tier(_wasm_outcome, module, (value,), monkeypatch)
        native = _three_tier(_native_outcome, module, (value,),
                             monkeypatch)
        assert wasm == native == expected


# ---------------------------------------------------------------------------
# Constant folding must match runtime f64 division exactly
# ---------------------------------------------------------------------------


class TestConstfoldDivisionParity:
    """The folded value of ``x / y`` must be bit-identical to what the
    engines compute at runtime — the folder used to turn ``nan / 0.0``
    into ±inf and ignore the sign of a ``-0.0`` divisor."""

    CASES = [(math.nan, 0.0), (math.nan, -0.0), (1.0, -0.0),
             (-1.0, -0.0), (0.0, 0.0), (-0.0, -0.0), (1.0, 0.0),
             (-1.0, 0.0), (1.0, 2.0), (-0.0, 2.0)]

    @pytest.mark.parametrize("x,y", CASES,
                             ids=[f"{x!r}/{y!r}" for x, y in CASES])
    def test_folded_equals_runtime(self, x, y):
        from repro.ir.passes.constfold import _eval_bin
        folded = _eval_bin(EBin("/", EConst(x, "f64"), EConst(y, "f64"),
                                "f64"), x, y)
        assert isinstance(folded, EConst)
        module = _module(
            Function("f", [("x", "f64"), ("y", "f64")], "f64",
                     body=[SReturn(EBin("/", ELocal("x", "f64"),
                                        ELocal("y", "f64"), "f64"))],
                     exported=True))
        # repr-compare: nan != nan, and the sign of zero/inf matters.
        wasm = _wasm_outcome(module, (x, y))
        native = _native_outcome(module, (x, y))
        assert repr(wasm) == repr(native)
        assert repr(folded.value) == repr(wasm)


class TestStackRepresentationInvariant:
    """Every i32 the VM pushes must use the canonical signed form that
    ``_wrap32`` produces — ``shr_u`` used to leak raw unsigned values."""

    def test_shr_u_result_is_resigned(self):
        module = _shift_fn(">>", "u32")
        assert _wasm_outcome(module, (I32_MIN, 0)) == I32_MIN
        assert _wasm_outcome(module, (-1, 0)) == -1
        assert _wasm_outcome(module, (-1, 31)) == 1

    def test_shr_u_feeds_signed_compare_correctly(self):
        """(x >>u 0) < 0 — with the raw unsigned representation the
        signed compare saw a huge positive number and answered 0."""
        x = ELocal("x", "u32")
        k = ELocal("k", "u32")
        shifted = ECast(EBin(">>", x, k, "u32"), "i32")
        cmp = EBin("<", shifted, EConst(0, "i32"), "i32")
        module = _module(Function("f", [("x", "u32"), ("k", "u32")], "i32",
                                  body=[SReturn(cmp)], exported=True))
        assert _differential(module, (I32_MIN, 0)) == 1
        assert _differential(module, (1, 0)) == 0
