"""Differential numeric-boundary tests: the Wasm VM and the native
register machine, fed the *same IR* through their real backends, must
agree on both the value and the trap behavior at the edges Jangda et
al. show dominate Wasm/native divergence — f64→int truncation limits,
shift counts at and past the mask, and the ±2^31 / ±2^63 extremes."""

import math

import pytest

from repro.backends import generate_wasm, generate_x86
from repro.engine.hostlib import wasm_host_imports
from repro.errors import TrapError
from repro.ir import EBin, ECast, EConst, ELocal, Function, Module, SReturn
from repro.native import execute_program
from repro.wasm import WasmVM, validate_module

TRAP = "trap"

I32_MIN, I32_MAX = -(1 << 31), (1 << 31) - 1
I64_MIN, I64_MAX = -(1 << 63), (1 << 63) - 1


def _module(fn):
    module = Module("boundaries")
    module.functions[fn.name] = fn
    return module


def _cast_fn(src_t, dst_t):
    """``dst_t f(src_t x) { return (dst_t)x; }``"""
    x = ELocal("x", src_t)
    return _module(Function("f", [("x", src_t)], dst_t,
                            body=[SReturn(ECast(x, dst_t))],
                            exported=True))


def _shift_fn(op, value_t):
    """``value_t f(value_t x, value_t k) { return x <op> k; }``"""
    x = ELocal("x", value_t)
    k = ELocal("k", value_t)
    return _module(Function("f", [("x", value_t), ("k", value_t)],
                            value_t,
                            body=[SReturn(EBin(op, x, k, value_t))],
                            exported=True))


def _wasm_outcome(module, args):
    wasm = generate_wasm(module)
    validate_module(wasm)
    instance = WasmVM().instantiate(wasm, wasm_host_imports([], None))
    try:
        return instance.invoke("f", *args)
    except TrapError:
        return TRAP


def _native_outcome(module, args):
    program = generate_x86(module)
    try:
        return execute_program(program, "f", args)[0]
    except TrapError:
        return TRAP


def _differential(module, args):
    """Run the same IR through both engines; they must agree exactly."""
    wasm = _wasm_outcome(module, args)
    native = _native_outcome(module, args)
    assert wasm == native, (f"engines disagree for args {args!r}: "
                            f"wasm={wasm!r} native={native!r}")
    return wasm


# ---------------------------------------------------------------------------
# f64 -> int truncation limits
# ---------------------------------------------------------------------------

#: (input, expected outcome) for ``(int)(double)`` — both boundary doubles
#: around 2^31 and the one representable below -2^31 - 1.
F64_TO_I32_CASES = [
    (0.0, 0),
    (-1.5, -1),
    (float(I32_MAX), I32_MAX),
    (math.nextafter(float(1 << 31), 0.0), I32_MAX),   # 2147483647.9999998
    (float(1 << 31), TRAP),                           # 2^31: out of range
    (float(I32_MIN), I32_MIN),                        # -2^31 is valid
    (-2147483648.5, I32_MIN),                         # truncates up
    (math.nextafter(-2147483649.0, 0.0), I32_MIN),
    (-2147483649.0, TRAP),                            # trunc = -2^31 - 1
    (math.nan, TRAP),
    (math.inf, TRAP),
    (-math.inf, TRAP),
]

#: Around ±2^63 double spacing is 2048, so the interesting inputs are the
#: exactly-representable powers and their floating-point neighbours.
F64_TO_I64_CASES = [
    (0.0, 0),
    (float(I64_MIN), I64_MIN),                        # -2^63 is valid
    (math.nextafter(float(I64_MIN), -math.inf), TRAP),
    (math.nextafter(float(1 << 63), 0.0), 9223372036854774784),
    (float(1 << 63), TRAP),                           # 2^63: out of range
    (math.nan, TRAP),
    (math.inf, TRAP),
    (-math.inf, TRAP),
]


class TestTruncationBoundaries:
    @pytest.mark.parametrize("value,expected", F64_TO_I32_CASES,
                             ids=[repr(v) for v, _ in F64_TO_I32_CASES])
    def test_f64_to_i32(self, value, expected):
        assert _differential(_cast_fn("f64", "i32"), (value,)) == expected

    @pytest.mark.parametrize("value,expected", F64_TO_I64_CASES,
                             ids=[repr(v) for v, _ in F64_TO_I64_CASES])
    def test_f64_to_i64(self, value, expected):
        assert _differential(_cast_fn("f64", "i64"), (value,)) == expected


# ---------------------------------------------------------------------------
# Shifts: counts 0 / 31 / 32 / 63 and sign-boundary operands
# ---------------------------------------------------------------------------

SHIFT_COUNTS_32 = [0, 1, 31, 32, 33, 63]
SHIFT_VALUES_32 = [0, 1, -1, I32_MAX, I32_MIN, 0x55555555]
SHIFT_COUNTS_64 = [0, 1, 63, 64, 127]
SHIFT_VALUES_64 = [0, 1, -1, I64_MAX, I64_MIN]


def _wrap(v, bits):
    v &= (1 << bits) - 1
    return v - (1 << bits) if v >> (bits - 1) else v


class TestShiftBoundaries:
    @pytest.mark.parametrize("count", SHIFT_COUNTS_32)
    @pytest.mark.parametrize("value", SHIFT_VALUES_32)
    def test_i32_shr_u(self, value, count):
        result = _differential(_shift_fn(">>", "u32"), (value, count))
        assert result == _wrap((value & 0xFFFFFFFF) >> (count & 31), 32)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_32)
    @pytest.mark.parametrize("value", SHIFT_VALUES_32)
    def test_i32_shr_s(self, value, count):
        result = _differential(_shift_fn(">>", "i32"), (value, count))
        assert result == value >> (count & 31)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_32)
    @pytest.mark.parametrize("value", SHIFT_VALUES_32)
    def test_i32_shl(self, value, count):
        result = _differential(_shift_fn("<<", "i32"), (value, count))
        assert result == _wrap(value << (count & 31), 32)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_64)
    @pytest.mark.parametrize("value", SHIFT_VALUES_64)
    def test_i64_shr_u(self, value, count):
        result = _differential(_shift_fn(">>", "u64"), (value, count))
        assert result == _wrap(
            (value & 0xFFFFFFFFFFFFFFFF) >> (count & 63), 64)

    @pytest.mark.parametrize("count", SHIFT_COUNTS_64)
    @pytest.mark.parametrize("value", SHIFT_VALUES_64)
    def test_i64_shl(self, value, count):
        result = _differential(_shift_fn("<<", "i64"), (value, count))
        assert result == _wrap(value << (count & 63), 64)


# ---------------------------------------------------------------------------
# The VM's signed-i32 stack invariant
# ---------------------------------------------------------------------------


class TestStackRepresentationInvariant:
    """Every i32 the VM pushes must use the canonical signed form that
    ``_wrap32`` produces — ``shr_u`` used to leak raw unsigned values."""

    def test_shr_u_result_is_resigned(self):
        module = _shift_fn(">>", "u32")
        assert _wasm_outcome(module, (I32_MIN, 0)) == I32_MIN
        assert _wasm_outcome(module, (-1, 0)) == -1
        assert _wasm_outcome(module, (-1, 31)) == 1

    def test_shr_u_feeds_signed_compare_correctly(self):
        """(x >>u 0) < 0 — with the raw unsigned representation the
        signed compare saw a huge positive number and answered 0."""
        x = ELocal("x", "u32")
        k = ELocal("k", "u32")
        shifted = ECast(EBin(">>", x, k, "u32"), "i32")
        cmp = EBin("<", shifted, EConst(0, "i32"), "i32")
        module = _module(Function("f", [("x", "u32"), ("k", "u32")], "i32",
                                  body=[SReturn(cmp)], exported=True))
        assert _differential(module, (I32_MIN, 0)) == 1
        assert _differential(module, (1, 0)) == 0
