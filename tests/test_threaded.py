"""Threaded-tier guarantees: dispatch completeness, structured
unknown-opcode errors, budget-trap parity, GC-pause parity, the
LinearMemory bounds edge, and the bench harness smoke mode.

The golden suite already proves sweep-level parity (the committed goldens
were produced by the reference ladders and CI replays them under the
default ``REPRO_FAST_INTERP=1``); these tests pin the tier-boundary
behaviours a sweep does not reach.
"""

from __future__ import annotations

import dataclasses
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import threaded as substrate
from repro.errors import TrapError, ValidationError

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"


def _snap(stats):
    """Order-stable stats snapshot (dataclass fields incl. op_counts)."""
    d = dataclasses.asdict(stats)
    return {k: tuple(v) if isinstance(v, list) else v for k, v in d.items()}


class TestKnob:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_INTERP", raising=False)
        assert substrate.fast_interp_enabled()

    def test_zero_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_INTERP", "0")
        assert not substrate.fast_interp_enabled()


class TestDispatchCompleteness:
    """Cost tables ⊆ threaded tier ⊆ reference ladder, per engine."""

    def test_wasm(self):
        from repro.wasm.instructions import OP_CLASS, OP_COST, Op
        from repro.wasm.threaded import SUPPORTED_OPS
        assert len(OP_COST) == len(OP_CLASS)
        # ELSE is rewritten to a resolved BR at prepare time; every other
        # opcode the cost model can charge has a threaded handler.
        assert set(range(len(OP_COST))) - SUPPORTED_OPS == {int(Op.ELSE)}
        text = (SRC / "wasm" / "vm.py").read_text()
        ladder = text[text.index("def _run_from"):]
        arms = {int(m) for m in re.findall(r"op == (\d+)", ladder)}
        for group in re.findall(r"op in \(([\d, ]+)\)", ladder):
            arms |= {int(m) for m in group.split(",") if m.strip()}
        missing = SUPPORTED_OPS - arms
        assert not missing, f"ops without a reference arm: {sorted(missing)}"

    def test_wasm_costs_stay_on_quarter_grid(self):
        # Precondition for per-block cycle batching (substrate rule 2):
        # quarter-multiples sum exactly at any association.
        from repro.wasm.instructions import OP_COST
        assert substrate.on_grid(OP_COST)

    def test_native(self):
        from repro.native.machine import N_COST, N_OP_CLASS, NOp
        from repro.native.threaded import SUPPORTED_OPS
        assert len(N_COST) == len(N_OP_CLASS)
        assert SUPPORTED_OPS == set(range(len(N_COST)))
        text = (SRC / "native" / "machine.py").read_text()
        arms = {int(getattr(NOp, name))
                for name in re.findall(r"op == NOp\.(\w+)", text)}
        for lo, hi in re.findall(r"NOp\.(\w+) <= op <= NOp\.(\w+)", text):
            arms |= set(range(int(getattr(NOp, lo)),
                              int(getattr(NOp, hi)) + 1))
        missing = SUPPORTED_OPS - arms
        assert not missing, f"ops without a reference arm: {sorted(missing)}"

    def test_js(self):
        from repro.jsengine.bytecode import (
            JS_OP_CLASS, JS_OP_COST, JS_OP_COST_OPT,
        )
        from repro.jsengine.threaded import SUPPORTED_OPS
        assert len(JS_OP_COST) == len(JS_OP_COST_OPT) == len(JS_OP_CLASS)
        # COMMA (48) is never emitted and has no reference arm either.
        assert set(range(len(JS_OP_COST))) - SUPPORTED_OPS == {48}
        text = (SRC / "jsengine" / "interpreter.py").read_text()
        arms = {int(m) for m in re.findall(r"op == (\d+)", text)}
        missing = SUPPORTED_OPS - arms
        assert not missing, f"ops without a reference arm: {sorted(missing)}"


def _tiny_wasm_instance():
    from repro.wasm import (
        FuncType, Function, WasmModule, WasmVM, validate_module,
    )
    from repro.wasm.instructions import Op, instr as I
    module = WasmModule()
    module.add_function(Function("main", FuncType((), ("i32",)), [],
                                 [I(Op.I32_CONST, 7)], exported=True))
    validate_module(module)
    return WasmVM().instantiate(module)


class TestUnknownOpcode:
    """Both tiers must fail loudly: the reference ladder's default arm at
    runtime, the translator with a structured error before running."""

    def test_wasm(self, monkeypatch):
        from repro.wasm.instructions import Op
        monkeypatch.setenv("REPRO_FAST_INTERP", "1")
        inst = _tiny_wasm_instance()
        prepared = inst._prepared["main"]
        prepared.code = [(int(Op.ELSE), None, None)] + list(prepared.code)
        with pytest.raises(ValidationError, match="no handler"):
            inst.invoke("main")
        monkeypatch.setenv("REPRO_FAST_INTERP", "0")
        inst = _tiny_wasm_instance()
        prepared = inst._prepared["main"]
        prepared.code = [(int(Op.ELSE), None, None)] + list(prepared.code)
        with pytest.raises(TrapError, match="unimplemented opcode 5"):
            inst.invoke("main")

    def test_native(self, monkeypatch):
        from repro.native.machine import (
            N_COST, NativeFunction, NativeProgram, _Machine,
        )
        bogus_op = len(N_COST)

        def machine():
            fn = NativeFunction("bogus", 0, 1,
                                [(bogus_op, 0, 0, 0, False)], False)
            return _Machine(NativeProgram(functions={"bogus": fn}))

        monkeypatch.setenv("REPRO_FAST_INTERP", "1")
        with pytest.raises(TrapError, match="no handler"):
            machine().call("bogus")
        monkeypatch.setenv("REPRO_FAST_INTERP", "0")
        with pytest.raises((TrapError, IndexError)):
            machine().call("bogus")

    def test_js(self, monkeypatch):
        from repro.jsengine.engine import JsEngine
        from repro.jsengine.interpreter import JsRuntimeError, execute
        from repro.jsengine.values import JSFunction, UNDEFINED

        def run():
            fn = JSFunction("bogus", [], [(48, None)], [], 0)
            execute(JsEngine(), fn, [], UNDEFINED)

        monkeypatch.setenv("REPRO_FAST_INTERP", "1")
        with pytest.raises(JsRuntimeError, match="no handler"):
            run()
        monkeypatch.setenv("REPRO_FAST_INTERP", "0")
        with pytest.raises(JsRuntimeError,
                           match="unimplemented bytecode op 48"):
            run()


def _compile(generate, source):
    from repro.cfront import parse_c, preprocess
    return generate(parse_c(preprocess(source)))


_LOOP_C = """
int main() {
  int s = 0;
  for (int i = 1; i < 50000; i++) { s = s + i % 7; }
  return s;
}
"""


class TestBudgetDifferential:
    """Instruction-budget exhaustion must trap at the same instruction
    with the same partial stats under both tiers (the batched-accounting
    reconstruction, including mid-block deopt to the reference loop)."""

    # Budgets chosen to land inside blocks, on block boundaries, and
    # barely past function entry.
    BUDGETS = (3, 11, 100, 777, 5000)

    def test_wasm(self, monkeypatch):
        from repro.backends import generate_wasm
        from repro.engine.hostlib import wasm_host_imports
        from repro.wasm import WasmVM
        module = _compile(generate_wasm, _LOOP_C)
        for budget in self.BUDGETS:
            snaps = []
            for fast in ("1", "0"):
                monkeypatch.setenv("REPRO_FAST_INTERP", fast)
                inst = None
                err = None
                try:
                    # The tiniest budgets trap inside the __mem_init
                    # start function, i.e. during instantiation.
                    inst = WasmVM(max_instructions=budget)\
                        .instantiate(module, wasm_host_imports([], None))
                    inst.invoke("main")
                except TrapError as exc:
                    err = str(exc)
                assert err is not None and "budget exhausted" in err
                snaps.append((err,
                              _snap(inst.stats) if inst is not None
                              else None))
            assert snaps[0] == snaps[1], f"budget={budget}"

    def test_native(self, monkeypatch):
        from repro.backends import generate_x86
        from repro.native.machine import _Machine
        program = _compile(generate_x86, _LOOP_C)
        for budget in self.BUDGETS:
            snaps = []
            for fast in ("1", "0"):
                monkeypatch.setenv("REPRO_FAST_INTERP", fast)
                machine = _Machine(program, max_instructions=budget)
                with pytest.raises(TrapError) as excinfo:
                    machine.call("main")
                snaps.append((str(excinfo.value), _snap(machine.stats),
                              machine.budget, bytes(machine.memory)))
            assert snaps[0] == snaps[1], f"budget={budget}"


_GC_JS = """
function mix(a, i) {
  a[i % 16] = a[(i * 7) % 16] + i * 0.5;
  return a[i % 16];
}
function main() {
  var arr = [];
  for (var j = 0; j < 16; j++) { arr[j] = 0.0; }
  var obj = {hits: 0, tag: "t"};
  var s = "";
  var total = 0.0;
  for (var i = 0; i < 3000; i++) {
    arr[i % 16] = i * 1.5;
    total = total + mix(arr, i);
    obj.hits = obj.hits + 1;
    if ((i % 37) == 0) { s = s + "x" + i; }
    var tmp = [i, i + 1, i + 2, i + 3];
    total = total + tmp[0] - tmp[3];
  }
  return total + obj.hits + s.length;
}
"""


class TestJsGcParity:
    def test_pause_cycles_identical(self, monkeypatch):
        """GC pauses depend on *liveness* at collection time, so this
        pins the threaded tier's shadow locals: stale reference-frame
        arm locals must pin exactly the same heap bytes in both tiers."""
        from repro.jsengine.engine import JsEngine
        snaps = []
        for fast in ("1", "0"):
            monkeypatch.setenv("REPRO_FAST_INTERP", fast)
            engine = JsEngine()
            # Shrink the trigger so the loop collects many times.
            engine.heap.trigger_bytes = 48 * 1024
            engine.load_script(_GC_JS)
            value = engine.call_global("main")
            snaps.append((value, _snap(engine.stats)))
        assert snaps[0] == snaps[1]
        assert snaps[0][1]["gc_runs"] > 3


class TestLinearMemoryBoundsEdge:
    def test_straddling_access_traps(self):
        from repro.wasm.memory import LinearMemory
        mem = LinearMemory(min_pages=1, max_pages=1)
        limit = 65536
        mem.store_i32(limit - 4, -123)
        assert mem.load_i32(limit - 4) == -123
        # Last byte in bounds, access straddles the committed limit.
        for width, load in ((2, mem.load_u16), (4, mem.load_i32),
                            (8, mem.load_f64)):
            load(limit - width)          # flush against the edge: fine
            with pytest.raises(TrapError, match="committed"):
                load(limit - width + 1)
        with pytest.raises(TrapError, match="committed"):
            mem.store_f64(limit - 7, 1.0)
        with pytest.raises(TrapError, match="committed"):
            mem.load_u8(-1)

    def test_vm_trap_identical_both_tiers(self, monkeypatch):
        from repro.wasm import (
            FuncType, Function, WasmModule, WasmVM, validate_module,
        )
        from repro.wasm.instructions import Op, instr as I
        module = WasmModule()
        # A straddling f64 load: address 65532 with 1 committed page.
        module.add_function(Function(
            "main", FuncType((), ("f64",)), [],
            [I(Op.I32_CONST, 65532), I(Op.F64_LOAD, 0)], exported=True))
        validate_module(module)
        snaps = []
        for fast in ("1", "0"):
            monkeypatch.setenv("REPRO_FAST_INTERP", fast)
            inst = WasmVM().instantiate(module)
            with pytest.raises(TrapError) as excinfo:
                inst.invoke("main")
            snaps.append((str(excinfo.value), _snap(inst.stats)))
        assert snaps[0] == snaps[1]
        assert "out-of-bounds" in snaps[0][0]


class TestBenchSmoke:
    def test_bench_smoke_runs(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(ROOT / "src"), str(ROOT)])
        result = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "bench.py"), "--smoke"],
            capture_output=True, text=True, timeout=570, env=env,
            cwd=str(ROOT))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "smoke ok" in result.stdout
