"""The 41-benchmark suite: registry integrity and cross-target execution.

The heavyweight equivalence sweep runs at XS; it is the repository's main
integration test (every benchmark through the full pipeline on all three
targets, outputs compared)."""

import numpy as np
import pytest

from repro.native import execute_program
from repro.suites import (
    SIZE_CLASSES, all_benchmarks, chstone_benchmarks, get_benchmark,
    polybench_benchmarks,
)

from tests.conftest import run_wasm_main


class TestRegistry:
    def test_counts_match_paper(self):
        assert len(all_benchmarks()) == 41
        assert len(polybench_benchmarks()) == 30
        assert len(chstone_benchmarks()) == 11

    def test_paper_names_present(self):
        for name in ("covariance", "gemm", "2mm", "3mm", "floyd-warshall",
                     "nussinov", "heat-3d", "seidel-2d", "ADPCM", "AES",
                     "BLOWFISH", "DFADD", "DFDIV", "DFMUL", "DFSIN",
                     "GSM", "MIPS", "MOTION", "SHA"):
            assert get_benchmark(name) is not None

    def test_all_have_five_sizes(self):
        for benchmark in all_benchmarks():
            for size in SIZE_CLASSES:
                defines = benchmark.defines(size)
                assert defines, (benchmark.name, size)

    def test_sizes_monotonic(self):
        # Larger classes never shrink any loop-bound macro.
        for benchmark in all_benchmarks():
            previous = benchmark.defines("XS")
            for size in ("S", "M", "L", "XL"):
                current = benchmark.defines(size)
                for macro, value in current.items():
                    assert value >= 0
                previous = current

    def test_categories_assigned(self):
        for benchmark in all_benchmarks():
            assert benchmark.category
            assert benchmark.suite in ("PolyBenchC", "CHStone")


class TestReferenceResults:
    """Selected kernels validated against independent numpy references."""

    def _wasm_result(self, name, size="XS", **extra_defines):
        from repro.compilers import CheerpCompiler
        benchmark = get_benchmark(name)
        defines = benchmark.defines(size)
        defines.update(extra_defines)
        cheerp = CheerpCompiler(linear_heap_size=512 * 1024)
        artifact = cheerp.compile_wasm(benchmark.source, defines, "O0",
                                       name)
        outputs, _ = run_wasm_main(artifact.module)
        return outputs[0]

    def test_gemm_against_numpy(self):
        n = 5
        result = self._wasm_result("gemm", NI=n, NJ=n, NK=n,
                                   PNI=n, PNJ=n, PNK=n)
        C = np.zeros((n, n))
        A = np.zeros((n, n))
        B = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                C[i, j] = ((i * j + 1) % n) / n
                A[i, j] = (i * (j + 1) % n) / n
                B[i, j] = (i * (j + 2) % n) / n
        expected = (1.2 * C + 1.5 * A @ B).sum()
        assert result == pytest.approx(expected, rel=1e-12)

    def test_trisolv_against_numpy(self):
        n = 6
        result = self._wasm_result("trisolv", N=n, PN=n)
        L = np.zeros((n, n))
        b = np.zeros(n)
        for i in range(n):
            b[i] = i / n
            for j in range(i + 1):
                L[i, j] = (i + n - j + 1) * 2.0 / n
        expected = np.linalg.solve(L, b).sum()
        assert result == pytest.approx(expected, rel=1e-9)

    def test_floyd_warshall_against_scipy_style(self):
        n = 8
        result = self._wasm_result("floyd-warshall", N=n, PN=n)
        path = np.zeros((n, n), dtype=int)
        for i in range(n):
            for j in range(n):
                v = i * j % 7 + 1
                if (i + j) % 13 == 0 or (i + j) % 7 == 0 \
                        or (i + j) % 11 == 0:
                    v = 999
                path[i, j] = v
        for k in range(n):
            for i in range(n):
                for j in range(n):
                    path[i, j] = min(path[i, j], path[i, k] + path[k, j])
        assert result == path.sum()

    def test_sha_against_hashlib(self):
        import hashlib
        nbytes = 128
        result = self._wasm_result("SHA", NBYTES=nbytes)
        v = 19088743
        message = bytearray()
        for _ in range(nbytes):
            v = (v * 69069 + 1234567) & 0xFFFFFFFF
            message.append((v >> 16) & 255)
        digest = hashlib.sha1(bytes(message)).digest()
        words = [int.from_bytes(digest[i:i + 4], "big")
                 for i in range(0, 20, 4)]
        expected = words[0] ^ words[1] ^ words[2] ^ words[3] ^ words[4]
        if expected >= 1 << 31:
            expected -= 1 << 32
        assert int(result) == expected

    def test_dfmul_against_real_floats(self):
        # The softfloat kernel's truncating multiply stays within 1 ulp-ish
        # of IEEE for normal inputs; validate the packing/algebra layer.
        import struct
        from repro.compilers import CheerpCompiler
        from repro.suites.chstone import _SOFTFLOAT
        src = _SOFTFLOAT + """
        int main() {
          unsigned long a = %dUL;
          unsigned long b = %dUL;
          printf("%%ld", (long)float64_mul(a, b));
          return 0;
        }
        """
        cheerp = CheerpCompiler(linear_heap_size=256 * 1024)
        for x, y in ((1.5, 2.0), (3.25, 0.5), (7.0, 11.0), (0.1, 10.0)):
            a = struct.unpack("<Q", struct.pack("<d", x))[0]
            b = struct.unpack("<Q", struct.pack("<d", y))[0]
            artifact = cheerp.compile_wasm(src % (a, b), {}, "O0", "dfmul")
            outputs, _ = run_wasm_main(artifact.module)
            got = struct.unpack("<d", struct.pack(
                "<q", int(outputs[0])))[0]
            assert got == pytest.approx(x * y, rel=1e-12)


@pytest.mark.slow
class TestCrossTargetSweep:
    """Every benchmark, all three targets, outputs must agree (XS/-O2)."""

    @pytest.mark.parametrize(
        "name", [b.name for b in all_benchmarks()])
    def test_benchmark_equivalence(self, name, cheerp, llvm_x86, runner):
        benchmark = get_benchmark(name)
        defines = benchmark.defines("XS")
        wasm = cheerp.compile_wasm(benchmark.source, defines, "O2", name)
        js = cheerp.compile_js(benchmark.source, defines, "O2", name)
        x86 = llvm_x86.compile(benchmark.source, defines, "O2", name)
        wasm_m = runner.run_wasm(wasm)
        js_m = runner.run_js(js)
        _, x86_stats = execute_program(x86.program, "main")
        assert len(wasm_m.output) == len(js_m.output) \
            == len(x86_stats.prints)
        for a, b, c in zip(wasm_m.output, js_m.output, x86_stats.prints):
            if isinstance(a, float):
                assert a == pytest.approx(b, rel=1e-9)
                assert a == pytest.approx(c, rel=1e-9)
            else:
                assert int(a) == int(b) == int(c)

    def test_memory_scales_with_input(self, cheerp, runner):
        benchmark = get_benchmark("gemm")
        small = runner.run_wasm(cheerp.compile_wasm(
            benchmark.source, benchmark.defines("XS"), "O2", "gemm"))
        large = runner.run_wasm(cheerp.compile_wasm(
            benchmark.source, benchmark.defines("XL"), "O2", "gemm"))
        # Tables 4/6: linear memory tracks the dataset size.
        assert large.memory_kb > 10 * small.memory_kb
