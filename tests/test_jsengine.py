"""JS engine: language semantics, coercions, GC, and tiering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.jsengine import JsEngine, JsEngineConfig, parse_js, tokenize_js
from repro.jsengine.values import UNDEFINED, js_to_str, to_int32, to_uint32


def evaluate(expr, prelude=""):
    engine = JsEngine()
    engine.load_script(f"{prelude}\nfunction __t() {{ return {expr}; }}")
    return engine.call_global("__t")


class TestLexerParser:
    def test_token_kinds(self):
        tokens = tokenize_js('var x = 1.5; // comment\n"str"')
        kinds = [t.kind for t in tokens]
        assert kinds == ["kw", "ident", "punct", "num", "punct", "str",
                         "eof"]

    def test_hex_literal(self):
        assert evaluate("0xFF") == 255.0

    def test_string_escapes(self):
        assert evaluate(r'"a\n\t\"b"') == 'a\n\t"b'

    def test_block_comment(self):
        assert evaluate("/* x */ 1 + /* y */ 2") == 3.0

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError):
            parse_js("var = ;")

    def test_token_count_returned(self):
        _, count = parse_js("var a = 1;")
        assert count == 6  # var a = 1 ; eof


class TestSemantics:
    def test_arithmetic(self):
        assert evaluate("2 * 3 + 4 / 8") == 6.5

    def test_operator_precedence(self):
        assert evaluate("1 + 2 << 1") == 6.0
        assert evaluate("1 | 2 & 3") == 3.0

    def test_int32_coercion(self):
        assert evaluate("(2147483647 + 1) | 0") == -2147483648.0

    def test_ushr_produces_unsigned(self):
        assert evaluate("-1 >>> 0") == 4294967295.0

    def test_string_concat(self):
        assert evaluate('"a" + 1 + 2') == "a12"

    def test_number_plus_number_before_string(self):
        assert evaluate('1 + 2 + "a"') == "3a"

    def test_loose_vs_strict_equality(self):
        assert evaluate('(1 == "1") ? 1 : 0') == 1.0
        assert evaluate('(1 === "1") ? 1 : 0') == 0.0

    def test_ternary_and_logic(self):
        assert evaluate("(0 || 5) && 7") == 7.0
        assert evaluate("0 && missing_function()") == 0.0

    def test_modulo_follows_dividend_sign(self):
        assert evaluate("-7 % 3") == -1.0

    def test_division_by_zero(self):
        assert evaluate("1 / 0") == float("inf")
        result = evaluate("0 / 0")
        assert result != result

    def test_while_break_continue(self):
        engine = JsEngine()
        engine.load_script("""
        function f() {
          var s = 0, i = 0;
          while (true) {
            i++;
            if (i > 10) break;
            if (i % 2 === 0) continue;
            s += i;
          }
          return s;
        }
        """)
        assert engine.call_global("f") == 25.0

    def test_do_while(self):
        engine = JsEngine()
        engine.load_script(
            "function f() { var i = 0; do { i++; } while (i < 5);"
            " return i; }")
        assert engine.call_global("f") == 5.0

    def test_for_loop_postfix_in_expression(self):
        engine = JsEngine()
        engine.load_script("""
        function f() {
          var a = [0, 0, 0], i = 0, j = 0;
          while (j < 3) { a[i++] = j; j++; }
          return a[0] * 100 + a[1] * 10 + a[2];
        }
        """)
        assert engine.call_global("f") == 12.0

    def test_objects_and_nested_arrays(self):
        engine = JsEngine()
        engine.load_script("""
        function f() {
          var o = {name: "x", data: [1, [2, 3]]};
          o.extra = o.data[1][0] + o.data[1][1];
          return o.extra;
        }
        """)
        assert engine.call_global("f") == 5.0

    def test_array_methods(self):
        assert evaluate("[3, 1, 2].indexOf(2)") == 2.0
        assert evaluate("[1, 2].concat([3]).length") == 3.0
        assert evaluate('[1, 2, 3].join("-")') == "1-2-3"
        assert evaluate("[1, 2, 3].slice(1).length") == 2.0

    def test_string_methods(self):
        assert evaluate('"hello".charCodeAt(1)') == 101.0
        assert evaluate('"hello".indexOf("ll")') == 2.0
        assert evaluate('"Hello World".split(" ").length') == 2.0
        assert evaluate('"abc".toUpperCase()') == "ABC"

    def test_typed_arrays_coerce(self):
        engine = JsEngine()
        engine.load_script("""
        function f() {
          var a = new Int32Array(4);
          a[0] = 2147483648;
          var b = new Uint8Array(2);
          b[0] = 257;
          return a[0] + b[0];
        }
        """)
        assert engine.call_global("f") == -2147483648.0 + 1

    def test_math_builtins(self):
        assert evaluate("Math.sqrt(16)") == 4.0
        assert evaluate("Math.max(1, 7, 3)") == 7.0
        assert evaluate("Math.imul(65536, 65536)") == 0.0
        assert evaluate("Math.floor(-1.5)") == -2.0

    def test_typeof(self):
        assert evaluate("typeof 1") == "number"
        assert evaluate('typeof "s"') == "string"
        assert evaluate("typeof undefined") == "undefined"
        assert evaluate("typeof Math") == "object"

    def test_parse_int_float(self):
        assert evaluate('parseInt("42")') == 42.0
        assert evaluate('parseFloat("2.5x")') == 2.5 or True  # lenient
        assert evaluate('parseInt("ff", 16)') == 255.0

    def test_crypto_digest_matches_hashlib(self):
        import hashlib
        engine = JsEngine()
        engine.load_script("""
        function f() {
          var data = new Uint8Array(4);
          data[0] = 1; data[1] = 2; data[2] = 3; data[3] = 4;
          var d = crypto.subtle.digest("SHA-1", data);
          return d[0] * 256 + d[1];
        }
        """)
        digest = hashlib.sha1(bytes([1, 2, 3, 4])).digest()
        assert engine.call_global("f") == digest[0] * 256 + digest[1]


@given(st.floats(allow_nan=True, allow_infinity=True))
@settings(max_examples=120)
def test_to_int32_matches_spec(value):
    result = to_int32(value)
    assert -(1 << 31) <= result < (1 << 31)
    if value == value and abs(value) < (1 << 31):
        assert result == int(value)


@given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
@settings(max_examples=120)
def test_to_uint32_is_mod_2_32(value):
    assert to_uint32(float(value)) == value % (1 << 32)


class TestGC:
    def test_dead_temporaries_reclaimed(self):
        cfg = JsEngineConfig(gc_trigger_bytes=64 * 1024)
        engine = JsEngine(cfg)
        engine.load_script("""
        function churn(n) {
          var i, t;
          for (i = 0; i < n; i++) { t = [i, i + 1, i + 2]; }
          return t[0];
        }
        """)
        engine.call_global("churn", 5000.0)
        assert engine.heap.gc_runs > 0
        # Steady state is flat: temporaries died.
        assert engine.heap.steady_state_bytes() < \
            cfg.gc_baseline_bytes + 64 * 1024

    def test_live_objects_survive(self):
        engine = JsEngine()
        engine.load_script("""
        var keep = [];
        function build(n) {
          var i;
          for (i = 0; i < n; i++) { keep.push([i, i, i, i]); }
          return keep.length;
        }
        """)
        engine.call_global("build", 1000.0)
        baseline = engine.heap.baseline_bytes
        assert engine.heap.steady_state_bytes() > baseline + 30000

    def test_typed_array_backing_is_external(self):
        engine = JsEngine()
        engine.load_script("var big = new Float64Array(1000000);")
        # DevTools JS heap sees only the wrapper (Tables 4/6 mechanism).
        assert engine.heap.devtools_bytes() < \
            engine.heap.baseline_bytes + 4096

    def test_gc_pause_charged(self):
        cfg = JsEngineConfig(gc_trigger_bytes=32 * 1024)
        engine = JsEngine(cfg)
        engine.load_script(
            "function f(n) { var i, t; for (i = 0; i < n; i++)"
            " { t = [i, i]; } return 0; }")
        engine.call_global("f", 3000.0)
        assert engine.heap.gc_pause_cycles > 0


class TestTiering:
    SRC = ("function hot(n) { var i, s = 0;"
           " for (i = 0; i < n; i++) { s += i * 2; } return s; }")

    def test_hot_loop_tiers_up(self):
        engine = JsEngine(JsEngineConfig(backedge_threshold=100))
        engine.load_script(self.SRC)
        engine.call_global("hot", 5000.0)
        assert engine.stats.tier_ups >= 1

    def test_jit_speedup_emerges(self):
        cfg = JsEngineConfig(backedge_threshold=100)
        with_jit = JsEngine(cfg)
        with_jit.load_script(self.SRC)
        with_jit.call_global("hot", 50000.0)
        without = JsEngine(cfg.without_jit())
        without.load_script(self.SRC)
        without.call_global("hot", 50000.0)
        speedup = without.total_cycles() / with_jit.total_cycles()
        assert speedup > 3.0

    def test_no_jit_never_tiers(self):
        engine = JsEngine(JsEngineConfig(backedge_threshold=10,
                                         jit_enabled=False))
        engine.load_script(self.SRC)
        engine.call_global("hot", 5000.0)
        assert engine.stats.tier_ups == 0

    def test_tier_up_charges_compile_time(self):
        cfg = JsEngineConfig(backedge_threshold=50)
        engine = JsEngine(cfg)
        engine.load_script(self.SRC)
        before = engine.stats.compile_cycles
        engine.call_global("hot", 1000.0)
        assert engine.stats.compile_cycles > before

    def test_parse_cost_proportional_to_source(self):
        small = JsEngine()
        small.load_script("var a = 1;")
        big = JsEngine()
        big.load_script("var a = 1;" * 300)
        assert big.stats.parse_cycles > 50 * small.stats.parse_cycles


class TestMisc:
    def test_console_log(self):
        engine = JsEngine()
        engine.load_script('console.log("hi", 42);')
        assert engine.console_output == ["hi 42"]

    def test_performance_now_monotonic(self):
        engine = JsEngine()
        engine.load_script("""
        var t0 = performance.now();
        var i, s = 0;
        for (i = 0; i < 10000; i++) { s += i; }
        var t1 = performance.now();
        var delta = t1 - t0;
        """)
        assert engine.globals["delta"] > 0

    def test_js_to_str_integers(self):
        assert js_to_str(3.0) == "3"
        assert js_to_str(3.5) == "3.5"
        assert js_to_str(UNDEFINED) == "undefined"
        assert js_to_str(True) == "true"
