"""C frontend: preprocessor, parser, type system, §3.1 transforms."""

import pytest

from repro.cfront import parse_c, preprocess, remove_exceptions, \
    replace_unions, transform_source
from repro.errors import ParseError
from repro.ir.nodes import (
    EBin, EConst, ELoad, ESelect, SFor, SIf, SStore, walk_stmts,
)


class TestPreprocessor:
    def test_define_substitution(self):
        out = preprocess("#define N 8\nint a[N];")
        assert "int a[8];" in out

    def test_cli_defines_win(self):
        out = preprocess("int a[N];", {"N": 16})
        assert "int a[16];" in out

    def test_macro_chains(self):
        out = preprocess("#define A 4\n#define B A\nint x[B];")
        assert "int x[4];" in out

    def test_ifdef_else_endif(self):
        src = ("#ifdef BIG\nint n = 100;\n#else\nint n = 1;\n#endif\n")
        assert "int n = 1;" in preprocess(src)
        assert "int n = 100;" in preprocess(src, {"BIG": 1})

    def test_ifndef(self):
        out = preprocess("#ifndef X\nint y = 2;\n#endif")
        assert "int y = 2;" in out

    def test_include_ignored(self):
        out = preprocess("#include <stdio.h>\nint x = 1;")
        assert "stdio" not in out

    def test_comments_stripped(self):
        out = preprocess("int /* mid */ x = 1; // end")
        assert "mid" not in out and "end" not in out

    def test_undef(self):
        out = preprocess("#define N 9\n#undef N\nint a = N;")
        assert "int a = N;" in out

    def test_unterminated_if_rejected(self):
        with pytest.raises(ParseError):
            preprocess("#ifdef X\nint a;")

    def test_identifier_prefixes_not_substituted(self):
        out = preprocess("#define PN 8\nint a[PNI];", {"PNI": 3})
        assert "int a[3];" in out


class TestParserBasics:
    def test_globals_and_arrays(self):
        module = parse_c("int g = 5; double a[4][6]; unsigned long u;")
        assert module.globals["g"].init == 5
        assert module.arrays["a"].dims == [4, 6]
        assert module.arrays["a"].elem_type == "f64"
        assert module.globals["u"].type == "u64"

    def test_char_array_storage(self):
        module = parse_c("unsigned char buf[10]; char s[4];")
        assert module.arrays["buf"].elem_type == "u8"
        assert module.arrays["s"].elem_type == "i8"

    def test_array_initialiser(self):
        module = parse_c("int t[4] = {1, 2, 3, 4};")
        assert module.arrays["t"].init == [1, 2, 3, 4]

    def test_function_params_and_ret(self):
        module = parse_c("double f(int a, double b) { return a + b; }")
        f = module.functions["f"]
        assert f.params == [("a", "i32"), ("b", "f64")]
        assert f.ret == "f64"

    def test_prototype_then_definition(self):
        module = parse_c("""
        int helper(int x);
        int main() { return helper(3); }
        int helper(int x) { return x * 2; }
        """)
        assert module.functions["helper"].body

    def test_local_array_rejected(self):
        with pytest.raises(ParseError, match="local arrays"):
            parse_c("void f() { int a[10]; }")

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(ParseError, match="undeclared"):
            parse_c("int f() { return nope; }")

    def test_undeclared_function_rejected(self):
        with pytest.raises(ParseError, match="prototype"):
            parse_c("int f() { return g(); }")

    def test_struct_lowered_to_scalars(self):
        module = parse_c("""
        struct Point { int x; int y; };
        struct Point p;
        int f() { p.x = 3; p.y = 4; return p.x + p.y; }
        """)
        assert "p__x" in module.globals
        assert "p__y" in module.globals

    def test_struct_array_lowered_to_member_arrays(self):
        module = parse_c("""
        struct Item { double w; int k; };
        struct Item items[8];
        double f() { items[2].w = 1.5; return items[2].w; }
        """)
        assert module.arrays["items__w"].elem_type == "f64"
        assert module.arrays["items__k"].dims == [8]


class TestTypeSystem:
    def test_usual_conversions_to_double(self):
        module = parse_c("double f(int a, double b) { return a * b; }")
        ret = module.functions["f"].body[-1].expr
        assert ret.type == "f64"

    def test_unsigned_wins(self):
        module = parse_c("unsigned f(int a, unsigned b) { return a + b; }")
        assert module.functions["f"].body[-1].expr.type == "u32"

    def test_long_literal(self):
        module = parse_c("long f() { return 1099511628211L; }")
        assert module.functions["f"].body[-1].expr.type == "i64"

    def test_big_literal_promotes(self):
        module = parse_c("long f() { return 4294967296; }")
        assert module.functions["f"].body[-1].expr.type in ("i64", "u64")

    def test_comparison_yields_i32(self):
        module = parse_c("int f(double a) { return a < 1.0; }")
        assert module.functions["f"].body[-1].expr.type == "i32"

    def test_explicit_cast(self):
        module = parse_c("int f(double d) { return (int)d + 1; }")
        assert module.functions["f"].body[-1].expr.type == "i32"


class TestLowering:
    def test_logical_and_pure_becomes_bitwise(self):
        module = parse_c("int f(int a, int b) "
                         "{ return a > 0 && b > 0; }")
        expr = module.functions["f"].body[-1].expr
        assert isinstance(expr, EBin) and expr.op == "&"

    def test_logical_with_call_short_circuits(self):
        module = parse_c("""
        int g(int x) { return x + 1; }
        int f(int a) { return a > 0 && g(a) > 2; }
        """)
        body = module.functions["f"].body
        assert any(isinstance(s, SIf) for s in body)

    def test_pure_ternary_becomes_select(self):
        module = parse_c("int f(int a) { return a > 0 ? a : -a; }")
        assert isinstance(module.functions["f"].body[-1].expr, ESelect)

    def test_impure_ternary_uses_if(self):
        module = parse_c("""
        int g(int x) { return x; }
        int f(int a) { return a ? g(1) : g(2); }
        """)
        assert any(isinstance(s, SIf)
                   for s in module.functions["f"].body)

    def test_printf_lowered_per_value(self):
        module = parse_c('int main() { printf("%d %f", 1, 2.0);'
                         " return 0; }")
        calls = [s.expr.name for s in module.functions["main"].body
                 if hasattr(s, "expr") and hasattr(s.expr, "name")]
        assert "__print_i32" in calls
        assert "__print_f64" in calls

    def test_compound_assignment_on_array(self):
        module = parse_c("double a[4]; void f(int i) { a[i] += 2.0; }")
        store = module.functions["f"].body[0]
        assert isinstance(store, SStore)
        assert isinstance(store.expr, EBin) and store.expr.op == "+"

    def test_for_loop_structure(self):
        module = parse_c(
            "int f(int n) { int i, s; s = 0;"
            " for (i = 0; i < n; i++) s += i; return s; }")
        loops = [s for s in walk_stmts(module.functions["f"].body)
                 if isinstance(s, SFor)]
        assert len(loops) == 1
        assert loops[0].cond.op == "<"

    def test_while_cond_with_call_rotated(self):
        module = parse_c("""
        int next() { return 1; }
        int f() {
          int n = 0;
          while (next() < 1 && n < 10)
            n = n + 1;
          return n;
        }
        """)
        loops = [s for s in walk_stmts(module.functions["f"].body)
                 if s.__class__.__name__ == "SWhile"]
        assert loops and isinstance(loops[0].cond, EConst)


class TestTransforms:
    def test_remove_exceptions(self):
        src = """
        try {
          if (x <= 0) throw bad_value;
          done = 1;
        }
        catch (...) {
          done = 0;
        }
        """
        out = remove_exceptions(src)
        assert "throw" not in out
        assert "catch" not in out
        assert "try" not in out
        assert "__error = 1;" in out
        assert "if (__error)" in out

    def test_exception_transform_compiles(self):
        # The paper's Fig. 3(a) pattern end-to-end through the frontend.
        src = """
        int isFinished = 0;
        int check(int v) {
          try {
            if (v <= 0) throw range_error;
            isFinished = 1;
          }
          catch (...) {
            isFinished = 0;
          }
          return isFinished;
        }
        int main() { printf("%d", check(5)); return 0; }
        """
        module = parse_c(transform_source(src))
        assert "check" in module.functions

    def test_replace_unions(self):
        out = replace_unions("union T { double d; long ll; };")
        assert out.startswith("struct T")

    def test_union_transform_compiles(self):
        src = """
        union T { double d; long ll; };
        union T t;
        long f() { t.ll = 5; return t.ll; }
        """
        module = parse_c(transform_source(src))
        assert "t__ll" in module.globals

    def test_untouched_source_passthrough(self):
        src = "int main() { return 0; }"
        assert transform_source(src) == src
