"""Wasm VM semantics: arithmetic vs reference semantics (hypothesis),
control flow, traps, host calls, and accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrapError, ValidationError
from repro.wasm import (
    FuncType, Function, GlobalVar, HostImport, WasmModule, WasmVM,
    validate_module, module_to_wat,
)
from repro.wasm.instructions import Op, OpClass, instr as I

I32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
I64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def run_binop(op, a, b, types=("i32", "i32"), result="i32"):
    module = WasmModule()
    body = [I(Op.LOCAL_GET, 0), I(Op.LOCAL_GET, 1), I(op)]
    module.add_function(Function("f", FuncType(types, (result,)), [],
                                 body, exported=True))
    validate_module(module)
    instance = WasmVM().instantiate(module)
    return instance.invoke("f", a, b)


def _wrap(v, bits):
    v &= (1 << bits) - 1
    return v - (1 << bits) if v >> (bits - 1) else v


class TestI32Arithmetic:
    @given(I32, I32)
    @settings(max_examples=80)
    def test_add_wraps(self, a, b):
        assert run_binop(Op.I32_ADD, a, b) == _wrap(a + b, 32)

    @given(I32, I32)
    @settings(max_examples=80)
    def test_mul_wraps(self, a, b):
        assert run_binop(Op.I32_MUL, a, b) == _wrap(a * b, 32)

    @given(I32, I32.filter(lambda v: v != 0))
    @settings(max_examples=80)
    def test_div_s_truncates(self, a, b):
        if a == -(1 << 31) and b == -1:
            return  # overflow trap case, checked separately
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert run_binop(Op.I32_DIV_S, a, b) == expected

    @given(I32, I32.filter(lambda v: v != 0))
    @settings(max_examples=80)
    def test_rem_s_sign_of_dividend(self, a, b):
        result = run_binop(Op.I32_REM_S, a, b)
        expected = abs(a) % abs(b)
        assert result == (-expected if a < 0 else expected)

    @given(I32, st.integers(min_value=0, max_value=63))
    @settings(max_examples=80)
    def test_shl_masks_count(self, a, count):
        assert run_binop(Op.I32_SHL, a, count) == _wrap(a << (count & 31),
                                                        32)

    @given(I32, st.integers(min_value=0, max_value=31))
    @settings(max_examples=80)
    def test_shr_u_logical(self, a, count):
        # The logical shift of the unsigned reinterpretation, re-signed
        # back into the VM's canonical signed-i32 stack representation.
        assert run_binop(Op.I32_SHR_U, a, count) == \
            _wrap((a & 0xFFFFFFFF) >> count, 32)

    def test_shr_u_maintains_signed_representation(self):
        # 0x80000000 >>u 0 must come back as i32 -2^31, not the raw
        # unsigned 2^31 (which would corrupt later signed compares).
        assert run_binop(Op.I32_SHR_U, -(1 << 31), 0) == -(1 << 31)
        assert run_binop(Op.I32_SHR_U, -1, 0) == -1
        assert run_binop(Op.I32_SHR_U, -1, 31) == 1

    @given(I32, I32)
    @settings(max_examples=60)
    def test_lt_u_unsigned(self, a, b):
        assert run_binop(Op.I32_LT_U, a, b) == \
            (1 if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0)

    def test_div_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_binop(Op.I32_DIV_S, 1, 0)

    def test_rem_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_binop(Op.I32_REM_U, 1, 0)


class TestI64Arithmetic:
    @given(I64, I64)
    @settings(max_examples=60)
    def test_add_wraps(self, a, b):
        assert run_binop(Op.I64_ADD, a, b, ("i64", "i64"), "i64") == \
            _wrap(a + b, 64)

    @given(I64, I64)
    @settings(max_examples=60)
    def test_mul_wraps(self, a, b):
        assert run_binop(Op.I64_MUL, a, b, ("i64", "i64"), "i64") == \
            _wrap(a * b, 64)

    @given(I64, I64.filter(lambda v: v != 0))
    @settings(max_examples=60)
    def test_div_u_unsigned(self, a, b):
        mask = (1 << 64) - 1
        expected = _wrap((a & mask) // (b & mask), 64)
        assert run_binop(Op.I64_DIV_U, a, b, ("i64", "i64"), "i64") == \
            expected

    @given(I64, st.integers(min_value=0, max_value=63))
    @settings(max_examples=60)
    def test_shr_s_arithmetic(self, a, count):
        assert run_binop(Op.I64_SHR_S, a, count, ("i64", "i64"),
                         "i64") == a >> count


class TestF64:
    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=60)
    def test_add_matches_ieee(self, a, b):
        assert run_binop(Op.F64_ADD, a, b, ("f64", "f64"), "f64") == a + b

    def test_div_by_zero_gives_inf(self):
        assert run_binop(Op.F64_DIV, 1.0, 0.0, ("f64", "f64"),
                         "f64") == float("inf")
        assert run_binop(Op.F64_DIV, -1.0, 0.0, ("f64", "f64"),
                         "f64") == float("-inf")

    def test_zero_over_zero_is_nan(self):
        result = run_binop(Op.F64_DIV, 0.0, 0.0, ("f64", "f64"), "f64")
        assert result != result

    def test_sqrt_negative_is_nan(self):
        module = WasmModule()
        body = [I(Op.LOCAL_GET, 0), I(Op.F64_SQRT)]
        module.add_function(Function("f", FuncType(("f64",), ("f64",)),
                                     [], body, exported=True))
        result = WasmVM().instantiate(module).invoke("f", -4.0)
        assert result != result


class TestControlFlow:
    def _fib_module(self):
        module = WasmModule()
        body = [
            I(Op.LOCAL_GET, 0), I(Op.I32_CONST, 3), I(Op.I32_LT_S),
            I(Op.IF), I(Op.I32_CONST, 1), I(Op.RETURN), I(Op.END),
            I(Op.LOCAL_GET, 0), I(Op.I32_CONST, 1), I(Op.I32_SUB),
            I(Op.CALL, 0),
            I(Op.LOCAL_GET, 0), I(Op.I32_CONST, 2), I(Op.I32_SUB),
            I(Op.CALL, 0),
            I(Op.I32_ADD),
        ]
        module.add_function(Function("fib", FuncType(("i32",), ("i32",)),
                                     [], body, exported=True))
        return module

    def test_recursion(self):
        instance = WasmVM().instantiate(self._fib_module())
        assert instance.invoke("fib", 15) == 610

    def test_loop_with_branches(self):
        module = WasmModule()
        # sum of odd numbers below n, skipping evens via continue-style br
        body = [
            I(Op.I32_CONST, 0), I(Op.LOCAL_SET, 1),
            I(Op.I32_CONST, 0), I(Op.LOCAL_SET, 2),
            I(Op.BLOCK), I(Op.LOOP),
            I(Op.LOCAL_GET, 2), I(Op.LOCAL_GET, 0), I(Op.I32_GE_S),
            I(Op.BR_IF, 1),
            I(Op.LOCAL_GET, 2), I(Op.I32_CONST, 1), I(Op.I32_ADD),
            I(Op.LOCAL_SET, 2),
            I(Op.LOCAL_GET, 2), I(Op.I32_CONST, 2), I(Op.I32_REM_S),
            I(Op.I32_EQZ), I(Op.IF), I(Op.BR, 1), I(Op.END),
            I(Op.LOCAL_GET, 1), I(Op.LOCAL_GET, 2), I(Op.I32_ADD),
            I(Op.LOCAL_SET, 1),
            I(Op.BR, 0), I(Op.END), I(Op.END),
            I(Op.LOCAL_GET, 1),
        ]
        module.add_function(Function("f", FuncType(("i32",), ("i32",)),
                                     ["i32", "i32"], body, exported=True))
        validate_module(module)
        assert WasmVM().instantiate(module).invoke("f", 10) == 25

    def test_unreachable_traps(self):
        module = WasmModule()
        module.add_function(Function("f", FuncType((), ()), [],
                                     [I(Op.UNREACHABLE)], exported=True))
        with pytest.raises(TrapError):
            WasmVM().instantiate(module).invoke("f")

    def test_select(self):
        module = WasmModule()
        body = [I(Op.I32_CONST, 10), I(Op.I32_CONST, 20),
                I(Op.LOCAL_GET, 0), I(Op.SELECT)]
        module.add_function(Function("f", FuncType(("i32",), ("i32",)),
                                     [], body, exported=True))
        instance = WasmVM().instantiate(module)
        assert instance.invoke("f", 1) == 10
        assert instance.invoke("f", 0) == 20

    def test_instruction_budget(self):
        module = WasmModule()
        body = [I(Op.BLOCK), I(Op.LOOP), I(Op.BR, 0), I(Op.END),
                I(Op.END)]
        module.add_function(Function("spin", FuncType((), ()), [], body,
                                     exported=True))
        vm = WasmVM(max_instructions=10000)
        with pytest.raises(TrapError):
            vm.instantiate(module).invoke("spin")


class TestHostCallsAndStats:
    def _module_with_import(self):
        module = WasmModule()
        module.imports.append(HostImport("env", "twice",
                                         FuncType(("i32",), ("i32",))))
        body = [I(Op.LOCAL_GET, 0), I(Op.CALL, 0), I(Op.CALL, 0)]
        module.add_function(Function("f", FuncType(("i32",), ("i32",)),
                                     [], body, exported=True))
        return module

    def test_host_import_called(self):
        module = self._module_with_import()
        instance = WasmVM().instantiate(
            module, {("env", "twice"): lambda inst, v: v * 2})
        assert instance.invoke("f", 3) == 12
        assert instance.stats.host_calls == 2

    def test_boundary_cost_charged(self):
        module = self._module_with_import()
        vm = WasmVM(boundary_cost=500.0)
        instance = vm.instantiate(
            module, {("env", "twice"): lambda inst, v: v})
        instance.invoke("f", 1)
        # One host→wasm entry + two wasm→host calls.
        assert instance.stats.boundary_cycles == 3 * 500.0

    def test_unresolved_import_rejected(self):
        module = self._module_with_import()
        with pytest.raises(ValidationError):
            WasmVM().instantiate(module)

    def test_op_class_counting(self):
        assert run_binop(Op.I32_ADD, 1, 2) == 3
        module = WasmModule()
        body = [I(Op.LOCAL_GET, 0), I(Op.LOCAL_GET, 1), I(Op.I32_MUL)]
        module.add_function(Function("f", FuncType(("i32", "i32"),
                                                   ("i32",)), [], body,
                                     exported=True))
        instance = WasmVM().instantiate(module)
        instance.invoke("f", 3, 4)
        assert instance.stats.count(OpClass.MUL) == 1
        assert instance.stats.arithmetic_profile()["MUL"] == 1
        assert instance.stats.instructions == 3

    def test_cycles_accumulate(self):
        module = WasmModule()
        body = [I(Op.LOCAL_GET, 0), I(Op.LOCAL_GET, 1), I(Op.I32_DIV_S)]
        module.add_function(Function("f", FuncType(("i32", "i32"),
                                                   ("i32",)), [], body,
                                     exported=True))
        instance = WasmVM().instantiate(module)
        instance.invoke("f", 10, 2)
        assert instance.stats.cycles >= 20.0   # division is expensive


class TestGlobalsAndWat:
    def test_global_get_set(self):
        module = WasmModule()
        module.globals.append(GlobalVar("counter", "i32", True, 5))
        body = [I(Op.GLOBAL_GET, 0), I(Op.I32_CONST, 1), I(Op.I32_ADD),
                I(Op.GLOBAL_SET, 0), I(Op.GLOBAL_GET, 0)]
        module.add_function(Function("bump", FuncType((), ("i32",)), [],
                                     body, exported=True))
        instance = WasmVM().instantiate(module)
        assert instance.invoke("bump") == 6
        assert instance.invoke("bump") == 7
        assert instance.global_value("counter") == 7

    def test_wat_printer_mentions_mnemonics(self):
        module = WasmModule()
        body = [I(Op.I32_CONST, 42), I(Op.DROP), I(Op.I32_CONST, 7)]
        module.add_function(Function("f", FuncType((), ("i32",)), [],
                                     body, exported=True))
        text = module_to_wat(module)
        assert "(module" in text
        assert "i32.const 42" in text
        assert "(func $f" in text
        assert '(export "f"' in text

    def test_memory_grow_instruction(self):
        module = WasmModule()
        body = [I(Op.I32_CONST, 2), I(Op.MEMORY_GROW), I(Op.DROP),
                I(Op.MEMORY_SIZE)]
        module.add_function(Function("f", FuncType((), ("i32",)), [],
                                     body, exported=True))
        instance = WasmVM().instantiate(module)
        assert instance.invoke("f") == 3
        assert instance.stats.memory_grows == 1


def run_convert(op, value, src="f64", result="i32"):
    module = WasmModule()
    body = [I(Op.LOCAL_GET, 0), I(op)]
    module.add_function(Function("f", FuncType((src,), (result,)), [],
                                 body, exported=True))
    validate_module(module)
    return WasmVM().instantiate(module).invoke("f", value)


class TestTruncationBoundaries:
    """Spec-exact i32/i64.trunc_f64_s range checks (the edges the issue's
    boundary audit covers; cross-engine agreement is asserted in
    tests/test_numeric_boundaries.py)."""

    def test_i32_trunc_accepts_full_range(self):
        assert run_convert(Op.I32_TRUNC_F64_S, -2147483648.0) == -(1 << 31)
        assert run_convert(Op.I32_TRUNC_F64_S, -2147483648.9) == -(1 << 31)
        assert run_convert(Op.I32_TRUNC_F64_S, 2147483647.0) == (1 << 31) - 1
        assert run_convert(Op.I32_TRUNC_F64_S, 2147483647.5) == (1 << 31) - 1

    @pytest.mark.parametrize("value", [-2147483649.0, 2147483648.0,
                                       float("nan"), float("inf"),
                                       float("-inf")])
    def test_i32_trunc_traps_out_of_range(self, value):
        with pytest.raises(TrapError):
            run_convert(Op.I32_TRUNC_F64_S, value)

    def test_i64_trunc_accepts_min_exactly(self):
        # -2^63 is a representable f64 and a valid i64: must NOT trap.
        assert run_convert(Op.I64_TRUNC_F64_S, -9223372036854775808.0,
                           result="i64") == -(1 << 63)

    @pytest.mark.parametrize("value", [9223372036854775808.0,
                                       -9223372036854777856.0,
                                       float("nan")])
    def test_i64_trunc_traps_out_of_range(self, value):
        with pytest.raises(TrapError):
            run_convert(Op.I64_TRUNC_F64_S, value, result="i64")
