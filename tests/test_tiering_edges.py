"""Tiering edge cases, differential across the three interpreter tiers.

The promotion machinery has sharp corners — contradictory enable flags,
degenerate hotness thresholds, tier-up landing exactly on the threshold,
OSR in the middle of a running loop.  Each case is pinned at the plan
level and, where the engines execute it, asserted byte-identical across
the reference ladder (``REPRO_FAST_INTERP=0``), the threaded tier and the
codegen tier — a mispriced edge in one tier shows up as a stats diff.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import pytest

from repro.engine.compilemodel import CodeUnit
from repro.engine.tiering import TierController, TierPolicy
from repro.env import chrome_desktop, firefox_desktop

TIERS = ("ref", "threaded", "codegen")

_TIER_ENV = {"ref": ("0", "0"), "threaded": ("1", "0"),
             "codegen": ("1", "1")}


def _set_tier(monkeypatch, tier):
    fast, codegen = _TIER_ENV[tier]
    monkeypatch.setenv("REPRO_FAST_INTERP", fast)
    monkeypatch.setenv("REPRO_CODEGEN", codegen)


def _snap(stats):
    snap = dataclasses.asdict(stats)
    return {k: repr(tuple(v) if isinstance(v, list) else v)
            for k, v in snap.items()}


UNIT = CodeUnit(static_instrs=300)


# ---------------------------------------------------------------------------
# Plan-level corners.

class TestPlanEdges:
    def test_eager_flag_without_basic_tier_degrades_to_opt_only(self):
        """eager_opt_compile only means 'compile both at startup' when
        both tiers exist; with the basic tier disabled it is an opt-only
        host, not an error and not a double charge."""
        policy = chrome_desktop().wasm.tier_policy().tweak(
            basic_enabled=False, eager_opt_compile=True)
        plan = TierController(policy).plan(UNIT, 10 ** 9)
        assert [(p, t) for p, t, _c in plan.compiles] == \
            [("compile", policy.optimizing_name)]
        assert plan.compile_cycles == policy.optimizing.compile_cycles(UNIT)
        assert plan.exec_factor == policy.opt_exec_factor
        assert not plan.tiered_up           # never *promoted* — started there

    def test_zero_threshold_promotes_on_any_execution(self):
        policy = chrome_desktop().wasm.tier_policy().tweak(
            tier_up_instructions=0)
        controller = TierController(policy)
        hot = controller.plan(UNIT, 1)
        assert hot.tiered_up and hot.switch_instructions == 0
        # frac_basic = 0/1: every retired instruction ran optimized.
        assert hot.exec_factor == policy.opt_exec_factor
        cold = controller.plan(UNIT, 0)     # never executed: strict >
        assert not cold.tiered_up
        assert cold.exec_factor == policy.basic_exec_factor

    def test_threshold_of_one_blends_at_the_second_instruction(self):
        policy = chrome_desktop().wasm.tier_policy().tweak(
            tier_up_instructions=1)
        controller = TierController(policy)
        assert not controller.plan(UNIT, 1).tiered_up
        hot = controller.plan(UNIT, 2)
        assert hot.tiered_up
        assert hot.exec_factor == (policy.basic_exec_factor * 0.5
                                   + policy.opt_exec_factor * 0.5)

    @pytest.mark.parametrize("policy_fn", [
        lambda: chrome_desktop().wasm.tier_policy(),
        lambda: firefox_desktop().wasm.tier_policy().tweak(
            eager_opt_compile=False),
    ], ids=["chrome", "firefox-lazy"])
    def test_tier_up_exactly_on_threshold_stays_basic(self, policy_fn):
        policy = policy_fn()
        controller = TierController(policy)
        at = controller.plan(UNIT, policy.tier_up_instructions)
        above = controller.plan(UNIT, policy.tier_up_instructions + 1)
        assert not at.tiered_up
        assert at.switch_instructions is None
        assert at.startup_compile_cycles == at.compile_cycles
        assert above.tiered_up
        assert above.tier_up_cycles == \
            policy.optimizing.compile_cycles(UNIT)


# ---------------------------------------------------------------------------
# Engine-level corners, differential across interpreter tiers.

def _run_wasm(policy):
    from repro.engine.hostlib import wasm_host_imports
    from repro.wasm import FuncType, Function, WasmModule, WasmVM, \
        validate_module
    from repro.wasm.instructions import Op, instr as I

    module = WasmModule()
    # for (i = 400; i != 0; i--) ;  — enough back-edges to matter.
    module.add_function(Function(
        "main", FuncType((), ("i32",)), ["i32"],
        [I(Op.I32_CONST, 400), I(Op.LOCAL_SET, 0),
         I(Op.BLOCK, "void"), I(Op.LOOP, "void"),
         I(Op.LOCAL_GET, 0), I(Op.I32_CONST, 1), I(Op.I32_SUB),
         I(Op.LOCAL_TEE, 0), I(Op.I32_EQZ), I(Op.BR_IF, 1),
         I(Op.BR, 0), I(Op.END), I(Op.END),
         I(Op.LOCAL_GET, 0)], exported=True))
    validate_module(module)
    output = []
    inst = WasmVM(tier_policy=policy).instantiate(
        module, wasm_host_imports(output, None))
    result = inst.invoke("main")
    return result, inst.stats


def _run_js_osr(threshold):
    from repro.engine.hostlib import install_js_host
    from repro.jsengine import JsEngine
    from repro.jsengine.config import JsEngineConfig

    engine = JsEngine(JsEngineConfig(backedge_threshold=threshold))
    install_js_host(engine, [])
    engine.load_script(
        "function f() { var s = 0;"
        " for (var i = 0; i < 300; i++) { s = s + i; } return s; }")
    result = engine.call_global("f")
    fn = engine.globals["f"]
    return result, fn.tier, engine.stats


class TestEngineEdgesDifferential:
    @pytest.mark.parametrize("policy_kwargs", [
        {"tier_up_instructions": 0},
        {"tier_up_instructions": 1},
        {"basic_enabled": False, "eager_opt_compile": True},
    ], ids=["zero-threshold", "one-threshold", "eager-no-basic"])
    def test_wasm_stats_identical_across_tiers(self, monkeypatch,
                                               policy_kwargs):
        policy = chrome_desktop().wasm.tier_policy().tweak(**policy_kwargs)
        snaps = {}
        for tier in TIERS:
            _set_tier(monkeypatch, tier)
            result, stats = _run_wasm(policy)
            assert result == 0
            assert stats.compile_cycles > 0
            snaps[tier] = _snap(stats)
        assert snaps["ref"] == snaps["threaded"] == snaps["codegen"]

    @pytest.mark.parametrize("threshold", [1, 50],
                             ids=["osr-first-backedge", "osr-mid-loop"])
    def test_js_osr_promotes_mid_loop_identically(self, monkeypatch,
                                                  threshold):
        """The loop gets hot *during* its single invocation: the function
        must finish the call on the optimizing tier (OSR), with the
        promotion compile charged — identically in every interpreter
        tier."""
        snaps = {}
        for tier in TIERS:
            _set_tier(monkeypatch, tier)
            result, fn_tier, stats = _run_js_osr(threshold)
            assert result == sum(range(300))
            assert fn_tier == 1                  # promoted mid-call
            assert stats.tier_ups == 1
            assert stats.tier_up_compile_cycles > 0
            snaps[tier] = _snap(stats)
        assert snaps["ref"] == snaps["threaded"] == snaps["codegen"]

    def test_js_below_threshold_never_promotes(self, monkeypatch):
        for tier in TIERS:
            _set_tier(monkeypatch, tier)
            _result, fn_tier, stats = _run_js_osr(10 ** 6)
            assert fn_tier == 0
            assert stats.tier_ups == 0
            assert stats.tier_up_compile_cycles == 0.0


# ---------------------------------------------------------------------------
# tweak() keeps accepting the legacy spellings the satellites removed
# from the config (regression guard for the alias table).

class TestTweakAliases:
    def test_legacy_scalar_spellings_rewrite_the_models(self):
        policy = TierPolicy()
        tweaked = policy.tweak(basic_compile_cycles_per_instr=3.25,
                               opt_compile_cycles_per_instr=40.0,
                               basic_exec_factor=1.5,
                               tier_up_instructions=123)
        assert tweaked.basic.cycles_per_instr == 3.25
        assert tweaked.optimizing.cycles_per_instr == 40.0
        assert tweaked.basic.exec_factor == 1.5
        assert tweaked.tier_up_instructions == 123
        # The original frozen policy is untouched.
        assert policy.basic.cycles_per_instr == 2.0

    def test_unknown_kwarg_still_raises(self):
        with pytest.raises(TypeError):
            TierPolicy().tweak(not_a_field=1)
