"""The modeled compile pipeline (``repro.engine.compilemodel``): cost
models price real code units, tier plans reconcile exactly with the pass
telemetry they were derived from, every engine charges its modeled
startup compile into ``stats.compile_cycles``, and the profile layer has
exactly one source of truth for tier parameters (no drifting duplicates).

Also hosts the tier-1 gate for the startup-frontier experiment
(``python -m repro.experiments.startup_frontier --smoke``).
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.engine.compilemodel import (
    CodeUnit,
    PassPipelineCompiler,
    PerInstrCompiler,
    SinglePassCompiler,
    empty_census,
    normalize_telemetry,
)
from repro.engine.opclass import NUM_OP_CLASSES, OpClass
from repro.engine.tiering import TierController, TierPolicy
from repro.env import ALL_DESKTOP, ALL_MOBILE, ALL_RUNTIMES, WasmEngineConfig
from repro.env.runtimes import (
    SINGLE_PASS_WEIGHTS,
    wamr_interp,
    wasmtime_style,
    wasmtime_winch,
)
from tests.conftest import TINY_C

ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Model arithmetic on hand-built units.

UNIT = CodeUnit(
    name="hand", static_instrs=100, code_bytes=640, functions=3,
    opclass_counts=tuple(
        {int(OpClass.LOAD): 10, int(OpClass.CALL): 5}.get(i, 0)
        for i in range(NUM_OP_CLASSES)),
    pass_telemetry=(("licm", 200, 180, 7), ("dce", 180, 150, 30)),
)


class TestModels:
    def test_per_instr_is_linear_in_size(self):
        model = PerInstrCompiler(cycles_per_instr=2.5)
        assert model.compile_cycles(UNIT) == 100 * 2.5
        assert model.function_compile_cycles(40) == 40 * 2.5
        # Census and telemetry are invisible to the legacy model.
        bare = CodeUnit(static_instrs=100)
        assert model.compile_cycles(bare) == model.compile_cycles(UNIT)

    def test_single_pass_prices_the_opclass_mix(self):
        model = SinglePassCompiler(
            cycles_per_instr=2.0,
            opclass_weights=((int(OpClass.LOAD), 3.0),
                             (int(OpClass.CALL), 5.0)),
            function_overhead_cycles=10.0)
        # 3 prologues + 100 ops at base rate + the weighted surcharge for
        # the 10 loads (x3) and 5 calls (x5); the 85 uncensused ops emit
        # at weight 1.0.
        expected = (3 * 10.0 + 100 * 2.0
                    + 10 * (3.0 - 1.0) * 2.0 + 5 * (5.0 - 1.0) * 2.0)
        assert model.compile_cycles(UNIT) == expected
        # Same size, different mix => different compile cost.
        flat = CodeUnit(static_instrs=100, functions=3)
        assert model.compile_cycles(flat) < model.compile_cycles(UNIT)
        assert model.function_compile_cycles(40) == 40 * 2.0 + 10.0

    def test_pass_pipeline_prices_the_telemetry(self):
        model = PassPipelineCompiler(cycles_per_node=2.0,
                                     cycles_per_rewrite=5.0,
                                     backend_cycles_per_instr=3.0)
        expected = (100 * 3.0
                    + 200 * 2.0 + 7 * 5.0       # licm
                    + 180 * 2.0 + 30 * 5.0)     # dce
        assert model.compile_cycles(UNIT) == expected
        # No telemetry (an O0 unit) pays only the backend lowering.
        o0 = replace(UNIT, pass_telemetry=())
        assert model.compile_cycles(o0) == 100 * 3.0

    def test_normalize_telemetry_accepts_recorder_dicts(self):
        entries = [{"pass": "dce", "nodes_in": 9, "nodes_out": 4,
                    "rewrites": 5, "wall_ms": 1.25}]
        assert normalize_telemetry(entries) == (("dce", 9, 4, 5),)
        # Already-normalized tuples round-trip; wall times never survive.
        assert normalize_telemetry((("dce", 9, 4, 5),)) == (("dce", 9, 4, 5),)
        assert normalize_telemetry(None) == ()

    def test_from_counts_implies_size_from_census(self):
        census = empty_census()
        census[int(OpClass.ADD)] = 7
        census[int(OpClass.LOAD)] = 3
        unit = CodeUnit.from_counts("u", census)
        assert unit.static_instrs == 10
        assert len(unit.opclass_counts) == NUM_OP_CLASSES


# ---------------------------------------------------------------------------
# The acceptance criterion: plans priced from a real artifact reconcile
# exactly with that artifact's recorded pass telemetry and census.

class TestPlanReconciliation:
    @pytest.fixture(scope="class")
    def unit(self, cheerp):
        artifact = cheerp.compile_wasm(TINY_C, opt_level="O2",
                                       name="reconcile")
        telemetry = artifact.meta.get("pass_telemetry") or \
            artifact.module.meta.get("pass_telemetry", ())
        return artifact.module.code_unit(
            binary_size=len(artifact.binary), pass_telemetry=telemetry)

    def test_real_unit_carries_census_and_telemetry(self, unit):
        assert unit.static_instrs > 0
        assert unit.code_bytes > 0
        assert sum(unit.opclass_counts) == unit.static_instrs
        assert unit.pass_telemetry            # O2 recorded its passes

    @pytest.mark.parametrize("dynamic", [0, 10 ** 9])
    @pytest.mark.parametrize("host", [wasmtime_style, wasmtime_winch,
                                      wamr_interp],
                             ids=lambda h: h.__name__)
    def test_plan_cycles_match_telemetry_exactly(self, unit, host, dynamic):
        from repro.experiments.startup_frontier import verify_plan_reconciles

        policy = host().wasm.tier_policy()
        plan = TierController(policy).plan(unit, dynamic)
        verify_plan_reconciles(unit, policy, plan)

    def test_optimizing_charge_is_the_telemetry_sum(self, unit):
        """Recomputed from the raw telemetry with independent arithmetic
        (not via the model): the 'no hardcoded compile constants' check."""
        policy = wasmtime_style().wasm.tier_policy()
        opt = policy.optimizing
        assert isinstance(opt, PassPipelineCompiler)
        plan = TierController(policy).plan(unit, 0)
        expected = unit.static_instrs * opt.backend_cycles_per_instr
        for _name, nodes_in, _nodes_out, rewrites in unit.pass_telemetry:
            expected += nodes_in * opt.cycles_per_node
            expected += rewrites * opt.cycles_per_rewrite
        assert plan.cycles_by_tier() == {opt.name: expected}
        assert plan.startup_compile_cycles == expected

    def test_single_pass_charge_follows_the_census(self, unit):
        policy = wasmtime_winch().wasm.tier_policy()
        basic = policy.basic
        assert isinstance(basic, SinglePassCompiler)
        plan = TierController(policy).plan(unit, 0)     # cold: basic only
        expected = (basic.function_overhead_cycles * unit.functions
                    + unit.static_instrs * basic.cycles_per_instr)
        for idx, weight in SINGLE_PASS_WEIGHTS:
            expected += (unit.opclass_counts[idx] * (weight - 1.0)
                         * basic.cycles_per_instr)
        assert plan.cycles_by_tier() == {basic.name: expected}

    def test_hot_plan_splits_startup_from_tier_up(self, unit):
        policy = wasmtime_winch().wasm.tier_policy()
        plan = TierController(policy).plan(unit, 10 ** 9)
        assert plan.tiered_up
        assert plan.switch_instructions == policy.tier_up_instructions
        assert plan.startup_compile_cycles == \
            policy.basic.compile_cycles(unit)
        assert plan.tier_up_cycles == policy.optimizing.compile_cycles(unit)
        assert plan.compile_cycles == \
            plan.startup_compile_cycles + plan.tier_up_cycles


# ---------------------------------------------------------------------------
# Every engine charges its modeled startup compile into the shared
# EngineStats.compile_cycles field.

class TestEnginesChargeCompileCycles:
    def test_wasm_instance_charges_plan_cycles(self, cheerp):
        from repro.engine.hostlib import wasm_host_imports
        from repro.wasm import WasmVM

        artifact = cheerp.compile_wasm(TINY_C, name="charge")
        policy = wasmtime_style().wasm.tier_policy()
        inst = WasmVM(tier_policy=policy).instantiate(
            artifact.module, wasm_host_imports([], None))
        expected = TierController(policy).plan(
            artifact.module.code_unit(), 0).startup_compile_cycles
        assert inst.stats.compile_cycles == expected
        assert expected > 0
        # Without a policy the instance stays free (browser harness path
        # prices compiles itself).
        bare = WasmVM().instantiate(artifact.module,
                                    wasm_host_imports([], None))
        assert bare.stats.compile_cycles == 0.0

    def test_runtime_profile_vm_is_prewired(self, cheerp):
        from repro.engine.hostlib import wasm_host_imports

        artifact = cheerp.compile_wasm(TINY_C, name="charge")
        runtime = wamr_interp()
        vm = runtime.vm()
        assert vm.boundary_cost == runtime.wasm.boundary_cost
        inst = vm.instantiate(artifact.module, wasm_host_imports([], None))
        assert inst.stats.compile_cycles == \
            runtime.wasm.tiers.basic.compile_cycles(
                artifact.module.code_unit())

    def test_native_machine_charges_compile_model(self, llvm_x86):
        from repro.native import execute_program
        from repro.native.machine import program_code_unit

        artifact = llvm_x86.compile(TINY_C, name="charge")
        model = SinglePassCompiler(cycles_per_instr=1.5,
                                   opclass_weights=SINGLE_PASS_WEIGHTS,
                                   function_overhead_cycles=20.0)
        _result, stats = execute_program(artifact.program, "main",
                                         compile_model=model)
        unit = program_code_unit(artifact.program)
        assert unit.functions == len(artifact.program.functions)
        assert stats.compile_cycles == model.compile_cycles(unit)
        _result, bare_stats = execute_program(artifact.program, "main")
        assert bare_stats.compile_cycles == 0.0
        # The model only adds the compile charge; execution is untouched.
        assert bare_stats.cycles == stats.cycles

    def test_js_engine_charges_script_unit(self):
        from repro.jsengine import JsEngine
        from repro.jsengine.compiler import compile_program, script_code_unit
        from repro.jsengine.parser import parse_js

        src = "function f(x) { return x * 2 + 1; } var r = f(20);"
        engine = JsEngine()
        engine.load_script(src)
        toplevel, functions = compile_program(parse_js(src)[0])
        unit = script_code_unit(toplevel, functions)
        assert unit.functions == 2                      # toplevel + f
        assert sum(unit.opclass_counts) == unit.static_instrs
        assert engine.stats.compile_cycles == \
            engine.tiering.policy.basic.compile_cycles(unit)


# ---------------------------------------------------------------------------
# Satellite: one source of truth for tier parameters.  WasmEngineConfig
# holds a TierPolicy; the legacy scalar fields are views, so the two can
# never drift apart again.

class TestNoDrift:
    def test_config_and_policy_share_no_fields(self):
        cfg_fields = {f.name for f in dataclasses.fields(WasmEngineConfig)}
        tier_fields = {f.name for f in dataclasses.fields(TierPolicy)}
        assert cfg_fields & tier_fields == set()
        assert "tiers" in cfg_fields
        # The old duplicated scalars are really gone from the config.
        assert "basic_exec_factor" not in cfg_fields
        assert "tier_up_instructions" not in cfg_fields

    @pytest.mark.parametrize(
        "profile", ALL_DESKTOP() + ALL_MOBILE() + ALL_RUNTIMES(),
        ids=lambda p: f"{p.name}-{p.version}")
    def test_legacy_views_mirror_the_policy(self, profile):
        cfg = profile.wasm
        policy = cfg.tier_policy()
        assert policy is cfg.tiers          # same object, not a copy
        assert cfg.basic_enabled == policy.basic_enabled
        assert cfg.optimizing_enabled == policy.optimizing_enabled
        assert cfg.eager_opt_compile == policy.eager_opt_compile
        assert cfg.tier_up_instructions == policy.tier_up_instructions
        assert cfg.basic_name == policy.basic.name
        assert cfg.optimizing_name == policy.optimizing.name
        assert cfg.basic_exec_factor == policy.basic.exec_factor
        assert cfg.opt_exec_factor == policy.optimizing.exec_factor

    def test_evolved_routes_legacy_spellings_into_the_policy(self):
        from repro.env import chrome_desktop

        cfg = chrome_desktop().wasm
        evolved = cfg.evolved(opt_exec_factor=2.5, tier_up_instructions=7,
                              boundary_cost=99.0)
        assert evolved.tiers.optimizing.exec_factor == 2.5
        assert evolved.tiers.tier_up_instructions == 7
        assert evolved.boundary_cost == 99.0
        # The original config (and its policy) are untouched.
        assert cfg.tiers.optimizing.exec_factor != 2.5
        assert cfg.boundary_cost != 99.0


# ---------------------------------------------------------------------------
# Tier-1 gate: the frontier experiment stays runnable end-to-end.

class TestFrontierSmoke:
    def test_startup_frontier_smoke_gate(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(ROOT / "src"), str(ROOT)])
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments.startup_frontier",
             "--smoke"],
            capture_output=True, text=True, timeout=570, env=env,
            cwd=str(ROOT))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "smoke ok" in result.stdout
