"""Layering tests: the three execution engines share code only through
the engine core (run ``python tools/check_layering.py`` standalone in CI).
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
check_layering = importlib.import_module("check_layering")


def test_no_layering_violations():
    violations = check_layering.check()
    assert violations == [], "\n".join(violations)


def test_opclass_lives_in_engine_core():
    from repro.engine.opclass import OpClass as core_opclass
    from repro.wasm.instructions import OpClass as reexported
    assert core_opclass is reexported


def test_jsengine_does_not_depend_on_wasm():
    """Importing the full JS engine must not pull in the wasm package."""
    import subprocess
    code = (
        "import sys\n"
        "import repro.jsengine, repro.jsengine.interpreter\n"
        "import repro.native.machine\n"
        "bad = [m for m in sys.modules if m.startswith('repro.wasm')]\n"
        "assert not bad, bad\n"
    )
    src = Path(__file__).resolve().parent.parent / "src"
    result = subprocess.run([sys.executable, "-c", code],
                            env={"PYTHONPATH": str(src), "PATH": "/usr/bin"},
                            capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
