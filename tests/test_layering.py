"""Layering tests: the three execution engines share code only through
the engine core (run ``python tools/check_layering.py`` standalone in CI).
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
check_layering = importlib.import_module("check_layering")


def test_no_layering_violations():
    violations = check_layering.check()
    assert violations == [], "\n".join(violations)


def test_opclass_lives_in_engine_core():
    from repro.engine.opclass import OpClass as core_opclass
    from repro.wasm.instructions import OpClass as reexported
    assert core_opclass is reexported


def test_jsengine_does_not_depend_on_wasm():
    """Importing the full JS engine must not pull in the wasm package."""
    import subprocess
    code = (
        "import sys\n"
        "import repro.jsengine, repro.jsengine.interpreter\n"
        "import repro.native.machine\n"
        "bad = [m for m in sys.modules if m.startswith('repro.wasm')]\n"
        "assert not bad, bad\n"
    )
    src = Path(__file__).resolve().parent.parent / "src"
    result = subprocess.run([sys.executable, "-c", code],
                            env={"PYTHONPATH": str(src), "PATH": "/usr/bin"},
                            capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


def test_engines_do_not_import_apparatus(tmp_path):
    """The measurement apparatus (harness, experiments) sits above every
    engine: an engine importing it would invert the stack. The checker
    flags this even for lazy, function-local imports."""
    vm = tmp_path / "wasm" / "vm.py"
    vm.parent.mkdir()
    vm.write_text("def run():\n    from repro.harness import runner\n")
    core = tmp_path / "engine" / "stats.py"
    core.parent.mkdir()
    core.write_text("import repro.experiments\n")
    violations = check_layering.check(src=tmp_path)
    assert len(violations) == 2
    assert any("wasm/vm.py" in v and "repro.harness" in v
               for v in violations)
    assert any("engine/stats.py" in v and "repro.experiments" in v
               for v in violations)


def test_engines_have_no_apparatus_imports_today():
    """Concrete check over the live tree: no engine module (or the engine
    core) imports repro.harness or repro.experiments."""
    violations = [v for v in check_layering.check()
                  if "harness" in v or "experiments" in v]
    assert violations == [], "\n".join(violations)
