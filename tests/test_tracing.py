"""Distributed tracing: deterministic ids, cross-process context
propagation through the sweep scheduler (retries included), engine
phase forwarding as leaf spans, and the Chrome Trace Event exporter."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.harness.parallel import FaultPlan, run_sweep
from repro.obs import (
    DET, TraceContext, activate, add_listener, current, derive_id,
    emit_span, get_registry, remove_listener, reset_registry,
    trace_enabled, trace_span,
)

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    yield
    reset_registry()


def _load_exporter():
    spec = importlib.util.spec_from_file_location(
        "repro_trace_export", ROOT / "tools" / "trace_export.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# -- ids -------------------------------------------------------------------


class TestIds:
    def test_ids_are_deterministic_functions_of_parts(self):
        a = TraceContext.root("request", 1, "cli", "key")
        b = TraceContext.root("request", 1, "cli", "key")
        assert a == b                       # no wallclock, no randomness
        assert a.child("cell", "k") == b.child("cell", "k")
        assert a.child("cell", "k") != a.child("cell", "other")
        assert derive_id("a", "bc") != derive_id("ab", "c")

    def test_child_links_to_parent(self):
        root = TraceContext.root("t", 1)
        child = root.child("cell", "k")
        grand = child.child("sched.attempt", 1)
        assert child.trace_id == grand.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        fields = grand.fields()
        assert fields["span_id"] == grand.span_id
        assert fields["parent_span_id"] == child.span_id

    def test_root_fields_have_no_parent(self):
        fields = TraceContext.root("t", 1).fields()
        assert set(fields) == {"trace_id", "span_id"}

    def test_wire_roundtrip(self):
        ctx = TraceContext.root("t", 1).child("cell", "k")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None

    def test_trace_enabled_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not trace_enabled()


# -- activation stack / trace_span -----------------------------------------


class TestActivation:
    def test_no_context_by_default(self):
        assert current() is None

    def test_activate_nests_and_unwinds(self):
        root = TraceContext.root("t", 1)
        inner = root.child("x")
        with activate(root):
            assert current() is root
            with activate(inner):
                assert current() is inner
            assert current() is root
        assert current() is None

    def test_activate_none_is_passthrough(self):
        with activate(None) as ctx:
            assert ctx is None
            assert current() is None

    def test_trace_span_without_context_is_inert(self):
        events = []
        token = add_listener(events.append)
        try:
            with trace_span("region") as ctx:
                assert ctx is None
        finally:
            remove_listener(token)
        assert events == []

    def test_trace_span_emits_and_records_raised_outcome(self):
        events = []
        token = add_listener(events.append)
        root = TraceContext.root("t", 1)
        try:
            with pytest.raises(ValueError):
                with trace_span("region", ctx=root, parts=(7,),
                                label="x") as ctx:
                    assert current() is ctx
                    raise ValueError("boom")
        finally:
            remove_listener(token)
        (event,) = [e for e in events if e["event"] == "tspan"]
        assert event["name"] == "region"
        assert event["outcome"] == "raised"
        assert event["label"] == "x"
        assert event["span_id"] == root.child("region", 7).span_id
        assert event["parent_span_id"] == root.span_id
        assert event["dur_us"] >= 0

    def test_emit_span_is_noop_without_sink(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENTS", raising=False)
        emit_span(TraceContext.root("t", 1), "region", 0.0, 0.0)


# -- scheduler propagation -------------------------------------------------


def _traced_cell(x):
    """Worker body that also drives the engine-trace forwarding path."""
    from repro.engine.trace import ExecutionTrace

    trace = ExecutionTrace("wasm")
    trace.emit("decode", 0, 5)
    trace.emit("execute", 5, 10)
    trace.finalize()
    return x * 2


def _det_cell(x):
    get_registry().counter_add("unit.traced_det", int(x), DET)
    return x


def _sweep_records(tmp_path, monkeypatch, jobs):
    events = tmp_path / f"events-{jobs}.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(events))
    monkeypatch.setenv("REPRO_TRACE", "1")
    root = TraceContext.root("request", 1, "test")
    traces = [root.child("cell", f"k{i}") for i in range(2)]
    sweep = run_sweep(_traced_cell, [1, 2], jobs=jobs, retries=1,
                      labels=["a", "b"],
                      fault_plan=FaultPlan({"b": "flake:1"}),
                      sleep=lambda _d: None, traces=traces)
    assert sweep.values == [2, 4]
    assert not sweep.failures
    records = [json.loads(line)
               for line in events.read_text().splitlines()]
    return root, traces, records, events


@pytest.mark.parametrize("jobs", [1, 2])
def test_sweep_ships_context_and_links_attempts(tmp_path, monkeypatch,
                                                jobs):
    """The full chain — root → cell → attempt (with one injected flake
    retry) → engine phase — links up by deterministic span ids, whether
    the context rides the Pipe to a worker process or stays in-process."""
    root, traces, records, _events = _sweep_records(tmp_path, monkeypatch,
                                                    jobs)
    attempts = [r for r in records
                if r["event"] == "tspan" and r["name"] == "sched.attempt"]
    by_label = {}
    for span in attempts:
        by_label.setdefault(span["label"], []).append(span)
    # Cell "b" flaked once: attempt 1 raised, attempt 2 ok.
    b_spans = sorted(by_label["b"], key=lambda s: s["attempt"])
    assert [s["outcome"] for s in b_spans] == ["raised", "ok"]
    assert [s["outcome"] for s in by_label["a"]] == ["ok"]
    for span in attempts:
        index = ["a", "b"].index(span["label"])
        assert span["trace_id"] == root.trace_id
        assert span["parent_span_id"] == traces[index].span_id
        # Deterministic: anyone can re-derive the id (the timeout path
        # relies on this to close spans for killed workers).
        expected = traces[index].child("sched.attempt", span["attempt"])
        assert span["span_id"] == expected.span_id
    # Engine phases forwarded as leaf spans under the attempt contexts.
    phases = [r for r in records if r["event"] == "trace"]
    assert {p["phase"] for p in phases} == {"decode", "execute"}
    attempt_ids = {s["span_id"] for s in attempts}
    for phase in phases:
        assert phase["trace_id"] == root.trace_id
        assert phase["parent_span_id"] in attempt_ids
    # Scheduler lifecycle events carry the cell context.
    cells = [r for r in records if r["event"] == "cell"]
    assert cells
    for cell in cells:
        assert cell["trace_id"] == root.trace_id
        assert cell["parent_span_id"] == root.span_id


def test_untraced_sweep_emits_no_trace_fields(tmp_path, monkeypatch):
    events = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS", str(events))
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    sweep = run_sweep(_traced_cell, [1, 2], jobs=1,
                      sleep=lambda _d: None)
    assert sweep.values == [2, 4]
    records = [json.loads(line)
               for line in events.read_text().splitlines()]
    assert records                           # events flow regardless
    assert not [r for r in records if r["event"] == "tspan"]
    assert not [r for r in records if "trace_id" in r]


def test_traces_must_align_with_items():
    root = TraceContext.root("t", 1)
    with pytest.raises(ValueError, match="traces"):
        run_sweep(_traced_cell, [1, 2], jobs=1, traces=[root])


def test_det_metrics_identical_with_tracing_on(tmp_path, monkeypatch):
    """Tracing must not perturb the deterministic metrics surface."""
    monkeypatch.delenv("REPRO_EVENTS", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    run_sweep(_det_cell, [3, 4], jobs=1)
    untraced = get_registry().export([DET])
    reset_registry()
    monkeypatch.setenv("REPRO_EVENTS", str(tmp_path / "events.jsonl"))
    monkeypatch.setenv("REPRO_TRACE", "1")
    root = TraceContext.root("t", 1)
    run_sweep(_det_cell, [3, 4], jobs=1,
              traces=[root.child("cell", i) for i in range(2)])
    assert get_registry().export([DET]) == untraced


# -- exporter --------------------------------------------------------------


class TestExporter:
    def test_tspan_and_phase_records_become_lanes(self):
        export = _load_exporter()
        records = [
            {"event": "tspan", "pid": 10, "name": "service.request",
             "ts_us": 100, "dur_us": 50, "outcome": "ok",
             "trace_id": "t1", "span_id": "s1"},
            {"event": "tspan", "pid": 10, "name": "sched.attempt",
             "ts_us": 110, "dur_us": 20, "outcome": "ok",
             "trace_id": "t1", "span_id": "s2", "parent_span_id": "s1"},
            {"event": "trace", "pid": 11, "engine": "wasm",
             "phase": "decode", "start_cycles": 0, "cycles": 5,
             "trace_id": "t1", "span_id": "p1", "parent_span_id": "s2"},
            {"event": "cell", "pid": 10, "label": "a"},   # no timestamp
        ]
        payload = export.to_chrome_trace(records)
        assert payload["displayTimeUnit"] == "ms"
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3            # lifecycle record skipped
        spans = [e for e in complete if e["cat"] == "span"]
        assert {e["name"] for e in spans} == {"service.request",
                                              "sched.attempt"}
        assert len({e["tid"] for e in spans}) == 1   # one lane per trace
        (engine,) = [e for e in complete if e["cat"] == "engine"]
        assert engine["name"] == "decode"
        assert engine["args"]["parent_span_id"] == "s2"
        names = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert names and all(e["name"] == "thread_name" for e in names)
        assert export.validate_chrome_trace(payload) == 3

    def test_validator_rejects_bad_traces(self):
        export = _load_exporter()
        with pytest.raises(ValueError, match="traceEvents"):
            export.validate_chrome_trace({"not": "a trace"})
        with pytest.raises(ValueError, match="missing 'ts'"):
            export.validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "dur": 0}]})
        with pytest.raises(ValueError, match="backwards"):
            export.validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 10,
                 "dur": 1},
                {"name": "y", "ph": "X", "pid": 1, "tid": 1, "ts": 5,
                 "dur": 1}]})
        with pytest.raises(ValueError, match="dur"):
            export.validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0,
                 "dur": -4}]})

    def test_sweep_exports_schema_valid_chrome_trace(self, tmp_path,
                                                     monkeypatch):
        """Tier-1 smoke: a real (flake-retried) sweep's event stream
        exports to Chrome Trace JSON that passes schema validation —
        required keys present, per-lane timestamps monotonic."""
        export = _load_exporter()
        _root, _traces, _records, events = _sweep_records(
            tmp_path, monkeypatch, jobs=1)
        out = tmp_path / "trace.json"
        payload = export.export_file(str(events), str(out))
        assert export.validate_chrome_trace(payload) > 0
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        complete = [e for e in on_disk["traceEvents"] if e["ph"] == "X"]
        assert {"sched.attempt"} <= {e["name"] for e in complete}
        assert {"decode", "execute"} <= {e["name"] for e in complete}
        # One injected retry is visible as two attempt events for "b".
        b_attempts = [e for e in complete if e["name"] == "sched.attempt"
                      and e["args"].get("label") == "b"]
        assert len(b_attempts) == 2
        assert {e["args"]["outcome"] for e in b_attempts} == \
            {"raised", "ok"}

    def test_cli_writes_and_validates(self, tmp_path, monkeypatch,
                                      capsys):
        export = _load_exporter()
        _root, _traces, _records, events = _sweep_records(
            tmp_path, monkeypatch, jobs=1)
        out = tmp_path / "trace.json"
        assert export.main([str(events), "-o", str(out)]) == 0
        assert out.exists()
        assert export.main([str(events), "--validate"]) == 0
        captured = capsys.readouterr()
        assert str(out) in captured.out
        assert "valid" in captured.out
