"""Engine-core tests: the shared TierController reproduces both engines'
legacy tiering arithmetic exactly, the unified stats protocol is shared by
all three engines, and the hostlib registry is the single libm wiring.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.clibm import c_exp, c_fmod, c_log, c_pow, js_pow
from repro.engine import (
    EngineStats, OpClass, TierController, TierPolicy, new_op_counts,
)
from repro.engine.hostlib import (
    JS_MATH, LIBM, install_js_host, js_exp, native_libm, wasm_host_imports,
)
from repro.env.browser import (
    ALL_DESKTOP, ALL_MOBILE, chrome_desktop, firefox_desktop,
)
from repro.jsengine import JsEngine
from repro.jsengine.engine import JsExecutionStats
from repro.native.machine import NativeStats
from repro.wasm.vm import ExecutionStats


def _legacy_wasm_compile_and_factor(cfg, static_instrs, instret):
    """The pre-refactor ``PageRunner._wasm_total_cycles`` tier arithmetic,
    kept verbatim as the parity oracle."""
    total = 0.0
    if cfg.basic_enabled and cfg.optimizing_enabled \
            and cfg.eager_opt_compile:
        total += static_instrs * (cfg.basic_compile_cycles_per_instr
                                  + cfg.opt_compile_cycles_per_instr)
        factor = cfg.opt_exec_factor
    elif cfg.basic_enabled and cfg.optimizing_enabled:
        total += static_instrs * cfg.basic_compile_cycles_per_instr
        if instret > cfg.tier_up_instructions:
            total += static_instrs * cfg.opt_compile_cycles_per_instr
            frac_basic = cfg.tier_up_instructions / max(instret, 1)
        else:
            frac_basic = 1.0
        factor = (cfg.basic_exec_factor * frac_basic +
                  cfg.opt_exec_factor * (1.0 - frac_basic))
    elif cfg.basic_enabled:
        total += static_instrs * cfg.basic_compile_cycles_per_instr
        factor = cfg.basic_exec_factor
    else:
        total += static_instrs * cfg.opt_compile_cycles_per_instr
        factor = cfg.opt_exec_factor
    return total, factor


class TestWasmTierParity:
    WORKLOADS = [(120, 0), (977, 199999), (977, 200000), (977, 200001),
                 (5000, 10 ** 7), (1, 1), (0, 0)]

    @pytest.mark.parametrize("profile", ALL_DESKTOP() + ALL_MOBILE(),
                             ids=lambda p: f"{p.name}-{p.platform_kind}")
    def test_profiles_reproduce_legacy_arithmetic(self, profile):
        controller = TierController(profile.wasm.tier_policy())
        for static_instrs, instret in self.WORKLOADS:
            plan = controller.compile_plan(static_instrs, instret)
            compile_total = 0.0
            for _phase, _tier, cycles in plan.compiles:
                compile_total += cycles
            legacy_total, legacy_factor = _legacy_wasm_compile_and_factor(
                profile.wasm, static_instrs, instret)
            assert compile_total == legacy_total
            assert plan.exec_factor == legacy_factor

    def test_tier_up_is_strict_threshold(self):
        cfg = chrome_desktop().wasm
        controller = TierController(cfg.tier_policy())
        at = controller.compile_plan(100, cfg.tier_up_instructions)
        above = controller.compile_plan(100, cfg.tier_up_instructions + 1)
        assert not at.tiered_up and at.exec_factor == cfg.basic_exec_factor
        assert above.tiered_up
        assert [p for p, _t, _c in above.compiles] == ["compile", "tier-up"]

    def test_disabled_tier_configs(self):
        base = chrome_desktop().wasm.tier_policy()
        basic_only = TierController(
            replace(base, optimizing_enabled=False))
        plan = basic_only.compile_plan(50, 10 ** 9)
        assert not plan.tiered_up
        assert plan.exec_factor == base.basic_exec_factor
        opt_only = TierController(replace(base, basic_enabled=False))
        plan = opt_only.compile_plan(50, 0)
        assert plan.exec_factor == base.opt_exec_factor
        assert plan.compile_cycles == 50 * base.opt_compile_cost

    def test_eager_compiles_both_tiers_in_one_charge(self):
        cfg = firefox_desktop().wasm
        assert cfg.eager_opt_compile
        plan = TierController(cfg.tier_policy()).compile_plan(200, 10 ** 9)
        assert len(plan.compiles) == 1
        assert plan.compiles[0][2] == 200 * (
            cfg.basic_compile_cycles_per_instr
            + cfg.opt_compile_cycles_per_instr)
        assert plan.exec_factor == cfg.opt_exec_factor


class TestJsTierParity:
    @pytest.mark.parametrize("profile", ALL_DESKTOP() + ALL_MOBILE(),
                             ids=lambda p: f"{p.name}-{p.platform_kind}")
    def test_policy_mirrors_config(self, profile):
        cfg = profile.js
        policy = TierPolicy.from_js_config(cfg)
        assert policy.basic_exec_factor == cfg.tier0_factor
        assert policy.opt_exec_factor == cfg.tier1_factor
        assert policy.opt_compile_cost == cfg.tier1_compile_cycles_per_op
        assert policy.call_threshold == cfg.call_threshold
        assert policy.backedge_threshold == cfg.backedge_threshold
        assert policy.optimizing_enabled == cfg.jit_enabled

    def test_hotness_thresholds_are_inclusive(self):
        cfg = chrome_desktop().js
        controller = TierController(TierPolicy.from_js_config(cfg))
        assert not controller.call_hot(cfg.call_threshold - 1)
        assert controller.call_hot(cfg.call_threshold)
        assert not controller.backedge_hot(cfg.backedge_threshold - 1)
        assert controller.backedge_hot(cfg.backedge_threshold)
        assert controller.exec_factor(0) == cfg.tier0_factor
        assert controller.exec_factor(1) == cfg.tier1_factor

    def test_engine_tier_up_point_unchanged(self):
        """Call-count promotion happens exactly at the config threshold."""
        cfg = chrome_desktop().js
        engine = JsEngine(cfg)
        engine.load_script("function f(x) { return x + 1; }")
        fn = engine.globals["f"]
        for i in range(cfg.call_threshold):
            assert fn.tier == 0
            engine.call_global("f", float(i))
        assert fn.tier == 1
        assert engine.stats.tier_ups == 1
        assert engine.stats.compile_cycles >= \
            len(fn.code) * cfg.tier1_compile_cycles_per_op


class TestUnifiedStats:
    def test_all_engines_share_the_protocol(self):
        for stats_cls in (ExecutionStats, JsExecutionStats, NativeStats):
            stats = stats_cls()
            assert isinstance(stats, EngineStats)
            assert len(stats.op_counts) == len(new_op_counts())
            assert stats.count(OpClass.ADD) == 0
            assert set(stats.arithmetic_profile()) == \
                {"ADD", "MUL", "DIV", "REM", "SHIFT", "AND", "OR"}

    def test_js_exec_ops_alias(self):
        stats = JsExecutionStats()
        stats.exec_ops += 7
        assert stats.instructions == 7
        assert stats.exec_ops == 7

    def test_native_machine_attributes_op_classes(self):
        from repro.native.machine import (
            NOp, NativeFunction, NativeProgram, execute_program,
        )
        code = [
            (NOp.MOVI, 0, 6, 0, False),
            (NOp.MOVI, 1, 7, 0, False),
            (NOp.MUL32, 2, 0, 1, False),
            (NOp.ADD32, 2, 2, 1, False),
            (NOp.RETV, 0, 2, 0, False),
        ]
        program = NativeProgram(functions={
            "main": NativeFunction("main", 0, 3, code, True)})
        result, stats = execute_program(program)
        assert result == 49
        assert stats.count(OpClass.MUL) == 1
        assert stats.count(OpClass.ADD) == 1
        assert stats.count(OpClass.CONST) == 2


class TestHostlib:
    def test_libm_registry_uses_c_semantics(self):
        assert LIBM["exp"][0] is c_exp
        assert LIBM["log"][0] is c_log
        assert LIBM["pow"][0] is c_pow
        assert LIBM["fmod"][0] is c_fmod
        for name in ("exp", "log", "sin", "cos", "pow", "fmod"):
            assert native_libm(name) is LIBM[name][0]

    def test_js_math_registry_uses_ecmascript_semantics(self):
        assert JS_MATH["pow"][0] is js_pow
        assert JS_MATH["exp"][0] is js_exp
        assert js_exp(1000.0) == math.exp(700.0)   # clamped, not overflow
        assert math.isnan(js_exp(math.nan))

    def test_wasm_imports_charge_native_math_cycles(self):
        class _Stats:
            cycles = 0.0

        class _Inst:
            stats = _Stats()

        output = []
        imports = wasm_host_imports(output)
        inst = _Inst()
        assert imports[("env", "exp")](inst, 1.0) == c_exp(1.0)
        assert inst.stats.cycles == 25.0
        assert imports[("env", "pow")](inst, 2.0, 10.0) == 1024.0
        assert inst.stats.cycles == 55.0
        imports[("env", "__print_i32")](inst, 42)
        assert output == [42]

    def test_js_math_object_is_wired_from_registry(self):
        engine = JsEngine()
        math_obj = engine.globals["Math"]
        for name, (_fn, _arity, cycles) in JS_MATH.items():
            assert math_obj.props[name].cycles == cycles
        engine.load_script("var r = Math.pow(0, -1);")
        assert engine.globals["r"] == math.inf

    def test_install_js_host_returns_timer_sink(self):
        engine = JsEngine()
        output = []
        timings = install_js_host(engine, output)
        engine.load_script("__print_f64(3.5); __report_time(12.0);")
        assert output == [3.5]
        assert timings == [12.0]
