"""Fault-tolerant sweep scheduler: failure capture, retries with
deterministic backoff, per-cell timeouts, fault injection, and graceful
degradation of experiment sweeps (partial results + failure report)."""

import os
import time

import pytest

from repro.errors import SweepError
from repro.experiments import ExperimentContext, figure5_opt_levels
from repro.harness.parallel import (
    CELL_TIMEOUT_ENV, CellFailure, FAULT_INJECT_ENV, FaultPlan,
    InjectedFault, RETRIES_ENV, SweepResult, backoff_delay,
    default_cell_timeout, default_retries, run_sweep,
)
from repro.suites import all_benchmarks


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x!r}")


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_spec_string(self):
        plan = FaultPlan("gemm=crash; SHA=flake:2, lu=hang:1")
        assert plan.directives == {"gemm": ("crash", None),
                                   "SHA": ("flake", 2),
                                   "lu": ("hang", 1)}

    def test_spec_roundtrip(self):
        plan = FaultPlan("b=flake:2;a=crash")
        assert FaultPlan(plan.spec()).directives == plan.directives

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_INJECT_ENV, "gemm=crash")
        plan = FaultPlan.from_env()
        assert plan and plan.directives == {"gemm": ("crash", None)}

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("gemm")
        with pytest.raises(ValueError):
            FaultPlan("gemm=explode")
        with pytest.raises(ValueError):
            FaultPlan("gemm=crash:0")

    def test_apply_crash_and_flake_windows(self):
        plan = FaultPlan({"a": "crash", "b": "flake:2"})
        with pytest.raises(InjectedFault):
            plan.apply("a", 1)
        with pytest.raises(InjectedFault):
            plan.apply("a", 99)          # crash has no attempt window
        with pytest.raises(InjectedFault):
            plan.apply("b", 2)
        plan.apply("b", 3)               # flake:2 clears on attempt 3
        plan.apply("unrelated", 1)       # unmatched labels run normally


# ---------------------------------------------------------------------------
# Scheduler: failure capture and retries
# ---------------------------------------------------------------------------


class TestFailureCapture:
    def test_crash_captured_not_propagated(self):
        sweep = run_sweep(_boom, [7], jobs=1, retries=0)
        assert not sweep.ok
        failure = sweep.failures[0]
        assert isinstance(failure, CellFailure)
        assert (failure.index, failure.label) == (0, "0")
        assert failure.error == "ValueError"
        assert "boom 7" in failure.message
        assert "ValueError" in failure.traceback
        assert failure.attempts == 1 and failure.kind == "crash"

    def test_parallel_crash_keeps_other_cells(self):
        sweep = run_sweep(_square, list(range(8)), jobs=3, retries=0,
                          fault_plan=FaultPlan({"3": "crash"}))
        assert [f.index for f in sweep.failures] == [3]
        assert sweep.merged() == [x * x for x in range(8) if x != 3]
        assert sweep.values[3] is None

    def test_traceback_survives_process_boundary(self):
        sweep = run_sweep(_boom, [1, 2], jobs=2, retries=0)
        assert all("ValueError: boom" in f.traceback
                   for f in sweep.failures)

    def test_report_and_raise_if_failed(self):
        sweep = run_sweep(_square, [1, 2], jobs=1, retries=0,
                          fault_plan=FaultPlan({"1": "crash"}))
        assert "1 of 2 cell(s) failed" in sweep.report()
        with pytest.raises(SweepError) as excinfo:
            sweep.raise_if_failed()
        assert excinfo.value.sweep is sweep
        assert excinfo.value.failures == sweep.failures

    def test_clean_sweep_report(self):
        sweep = run_sweep(_square, [1, 2], jobs=1, retries=0)
        assert sweep.ok and "2 cell(s) completed" in sweep.report()
        assert sweep.raise_if_failed() is sweep


class TestRetries:
    def test_flake_recovers_within_budget(self):
        delays = []
        sweep = run_sweep(_square, [1, 2, 3], jobs=2, retries=1,
                          fault_plan=FaultPlan({"2": "flake:1"}),
                          sleep=delays.append)
        assert sweep.ok and sweep.values == [1, 4, 9]
        assert delays == [backoff_delay(1)]

    def test_exhaustion_counts_attempts(self):
        sweep = run_sweep(_boom, [5], jobs=1, retries=3,
                          sleep=lambda _d: None)
        assert sweep.failures[0].attempts == 4

    def test_backoff_schedule_is_deterministic(self):
        delays = []
        run_sweep(_boom, [5], jobs=1, retries=3, sleep=delays.append)
        assert delays == [backoff_delay(1), backoff_delay(2),
                          backoff_delay(3)]
        assert delays == [0.05, 0.1, 0.2]
        # ... and bounded.
        assert backoff_delay(50) == 1.0

    def test_retries_env(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "4")
        assert default_retries() == 4
        monkeypatch.setenv(RETRIES_ENV, "garbage")
        assert default_retries() == 1
        monkeypatch.delenv(RETRIES_ENV)
        assert default_retries() == 1


# ---------------------------------------------------------------------------
# Scheduler: timeouts and worker replacement
# ---------------------------------------------------------------------------


class TestTimeouts:
    def test_hung_cell_killed_and_sweep_completes(self):
        start = time.monotonic()
        sweep = run_sweep(_square, [1, 2, 3, 4], jobs=2, retries=0,
                          timeout=1.0, fault_plan=FaultPlan({"1": "hang"}))
        elapsed = time.monotonic() - start
        failure, = sweep.failures
        assert failure.kind == "timeout" and failure.index == 1
        assert sweep.merged() == [1, 9, 16]
        assert elapsed < 30  # killed, not waited out

    def test_hang_then_retry_succeeds(self):
        sweep = run_sweep(_square, [1, 2], jobs=2, retries=1, timeout=1.0,
                          fault_plan=FaultPlan({"0": "hang:1"}),
                          sleep=lambda _d: None)
        assert sweep.ok and sweep.values == [1, 4]

    def test_single_cell_sweep_still_enforces_timeout(self):
        sweep = run_sweep(_square, [5], jobs=4, retries=0, timeout=1.0,
                          fault_plan=FaultPlan({"0": "hang"}))
        assert sweep.failures and sweep.failures[0].kind == "timeout"

    def test_timeout_env(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "2.5")
        assert default_cell_timeout() == 2.5
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "0")
        assert default_cell_timeout() is None
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "garbage")
        assert default_cell_timeout() is None
        monkeypatch.delenv(CELL_TIMEOUT_ENV)
        assert default_cell_timeout() is None


class TestWorkerDeath:
    def test_dead_worker_reported_and_replaced(self):
        sweep = run_sweep(_exit_on_two, [1, 2, 3, 4], jobs=2, retries=0)
        failure, = sweep.failures
        assert failure.kind == "lost" and failure.error == "WorkerDied"
        assert sweep.merged() == [1, 3, 4]


def _exit_on_two(x):
    if x == 2:
        os._exit(17)
    return x


# ---------------------------------------------------------------------------
# Determinism: a fault-free sweep is byte-identical to the serial loop
# ---------------------------------------------------------------------------


class TestFaultFreeParity:
    def test_values_match_serial(self):
        items = list(range(23))
        serial = run_sweep(_square, items, jobs=1)
        parallel = run_sweep(_square, items, jobs=4)
        assert serial.ok and parallel.ok
        assert parallel.values == serial.values

    def test_armed_but_unmatched_plan_changes_nothing(self):
        plan = FaultPlan({"no-such-cell": "crash"})
        sweep = run_sweep(_square, list(range(9)), jobs=3, retries=0,
                          fault_plan=plan)
        assert sweep.ok and sweep.values == [x * x for x in range(9)]


# ---------------------------------------------------------------------------
# Experiment-level degradation (the tier-1 smoke test of the issue)
# ---------------------------------------------------------------------------


SMOKE_SET = {"gemm", "SHA"}


def _smoke_ctx(**kwargs):
    ctx = ExperimentContext(quick=True, repetitions=1, **kwargs)
    ctx.benchmarks = lambda: [b for b in all_benchmarks()
                              if b.name in SMOKE_SET]
    return ctx


class TestExperimentDegradation:
    def test_injected_crash_yields_partial_results_and_report(self):
        clean = figure5_opt_levels(_smoke_ctx(jobs=2, retries=0))
        ctx = _smoke_ctx(jobs=2, retries=0,
                         fault_plan=FaultPlan({"gemm": "crash"}))
        result = figure5_opt_levels(ctx)
        # The crashed cell is dropped; every surviving cell is
        # byte-identical to the fault-free run.
        assert set(result["data"]["wasm"]) == {"SHA"}
        for target in result["data"]:
            assert result["data"][target]["SHA"] == \
                clean["data"][target]["SHA"]
        # The failures are recorded with experiment context and reported.
        assert ctx.failures
        assert all(f.label == "gemm" for f in ctx.failures)
        assert all(f.context["experiment"] for f in ctx.failures)
        report = ctx.failure_report()
        assert "gemm" in report and "InjectedFault" in report

    def test_env_armed_injection(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "gemm=crash")
        monkeypatch.setenv(RETRIES_ENV, "0")
        ctx = _smoke_ctx(jobs=2)
        result = figure5_opt_levels(ctx)
        assert set(result["data"]["wasm"]) == {"SHA"}
        assert ctx.failures and ctx.failures[0].label == "gemm"

    def test_total_failure_raises_sweep_error(self):
        ctx = _smoke_ctx(jobs=2, retries=0,
                         fault_plan=FaultPlan({"gemm": "crash",
                                               "SHA": "crash"}))
        with pytest.raises(SweepError) as excinfo:
            figure5_opt_levels(ctx)
        assert len(excinfo.value.failures) == len(SMOKE_SET)

    def test_flaky_cell_is_retried_to_success(self):
        clean = figure5_opt_levels(_smoke_ctx(jobs=2, retries=0))
        ctx = _smoke_ctx(jobs=2, retries=1,
                         fault_plan=FaultPlan({"gemm": "flake:1"}))
        result = figure5_opt_levels(ctx)
        assert not ctx.failures
        assert result["data"] == clean["data"]
        assert result["text"] == clean["text"]
