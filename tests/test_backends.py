"""Backends: cross-target equivalence and target-specific lowering."""

import pytest

from repro.backends import (
    WasmCodegenOptions, generate_js, generate_wasm, generate_x86,
)
from repro.backends.wasm_gen import peephole
from repro.cfront import parse_c, preprocess
from repro.harness import install_c_host
from repro.jsengine import JsEngine
from repro.native import execute_program
from repro.wasm import validate_module
from repro.wasm.instructions import Op, instr as I

from tests.conftest import TINY_C, TINY_C_CHECKSUM, run_wasm_main


def compile_ir(source, defines=None):
    return parse_c(preprocess(source, defines))


def run_js_main(js_source):
    engine = JsEngine()
    output = []
    install_c_host(engine, output)
    engine.load_script(js_source)
    engine.call_global("main")
    return output, engine


def run_all_targets(source, defines=None):
    """Compile one C program to all three targets; returns the outputs."""
    wasm_module = generate_wasm(compile_ir(source, defines))
    validate_module(wasm_module)
    wasm_out, _ = run_wasm_main(wasm_module)
    js_out, _ = run_js_main(generate_js(compile_ir(source, defines)))
    program = generate_x86(compile_ir(source, defines))
    _, stats = execute_program(program, "main")
    return wasm_out, js_out, stats.prints


CROSS_TARGET_PROGRAMS = [
    # Signed/unsigned 32-bit arithmetic and shifts.
    """
    int main() {
      int a = -7, s = 0;
      unsigned u = 3000000000U;
      s = a / 2 + a % 3;
      s = s ^ (int)(u >> 3);
      s = s + (a << 4);
      printf("%d", s);
      return 0;
    }
    """,
    # 64-bit arithmetic (the i64-legalisation path in JS).
    """
    int main() {
      long h = 1469598103934665603L;
      unsigned long u = 18446744073709551615UL;
      h = h * 1099511628211L;
      h = h ^ (long)(u >> 17);
      h = h / 1234567L;
      h = h % 1000003L;
      printf("%ld", h);
      return 0;
    }
    """,
    # Floating point incl. library calls.
    """
    int main() {
      double x = 2.0;
      double y = sqrt(x) + fabs(-1.5) + floor(2.7) + pow(2.0, 10.0);
      printf("%f", y);
      return 0;
    }
    """,
    # Control flow: breaks, continues, nested loops.
    """
    int main() {
      int i, j, s = 0;
      for (i = 0; i < 10; i++) {
        if (i == 7) break;
        for (j = 0; j < 10; j++) {
          if (j % 2 == 0) continue;
          s += i * j;
        }
      }
      printf("%d", s);
      return 0;
    }
    """,
    # Byte arrays and bit manipulation.
    """
    unsigned char buf[32];
    int main() {
      int i, s = 0;
      for (i = 0; i < 32; i++)
        buf[i] = (i * 37 + 11) & 255;
      for (i = 0; i < 32; i++)
        s = (s << 1) ^ buf[i];
      printf("%d", s);
      return 0;
    }
    """,
]


@pytest.mark.parametrize("index", range(len(CROSS_TARGET_PROGRAMS)))
def test_cross_target_equivalence(index):
    source = CROSS_TARGET_PROGRAMS[index]
    wasm_out, js_out, x86_out = run_all_targets(source)
    assert len(wasm_out) == len(js_out) == len(x86_out) >= 1
    for a, b, c in zip(wasm_out, js_out, x86_out):
        if isinstance(a, float):
            assert a == pytest.approx(b) and a == pytest.approx(c)
        else:
            assert int(a) == int(b) == int(c)


class TestWasmBackend:
    def test_tiny_c_result(self):
        module = generate_wasm(compile_ir(TINY_C))
        validate_module(module)
        outputs, _ = run_wasm_main(module)
        assert outputs[0] == pytest.approx(TINY_C_CHECKSUM)

    def test_memory_layout_metadata(self):
        module = generate_wasm(compile_ir(TINY_C))
        assert module.meta["data_bytes"] >= 8 * 8 * 8  # A alone
        assert module.meta["target_pages"] >= module.meta["initial_pages"]

    def test_mem_init_grows_to_target(self):
        options = WasmCodegenOptions(heap_bytes=512 * 1024,
                                     growth_granule_pages=1)
        module = generate_wasm(compile_ir(TINY_C), options)
        _, instance = run_wasm_main(module)
        assert instance.memory.pages >= module.meta["target_pages"]
        assert instance.stats.memory_grows >= 8

    def test_granule_reduces_grow_calls(self):
        fine = WasmCodegenOptions(heap_bytes=2 * 1024 * 1024,
                                  growth_granule_pages=1)
        coarse = WasmCodegenOptions(heap_bytes=2 * 1024 * 1024,
                                    growth_granule_pages=256)
        _, fine_inst = run_wasm_main(generate_wasm(compile_ir(TINY_C),
                                                   fine))
        _, coarse_inst = run_wasm_main(generate_wasm(compile_ir(TINY_C),
                                                     coarse))
        assert coarse_inst.stats.memory_grows < fine_inst.stats.memory_grows
        assert coarse_inst.memory.byte_size >= fine_inst.memory.byte_size

    def test_peephole_shrinks_and_preserves(self):
        plain = WasmCodegenOptions(peephole=False)
        opt = WasmCodegenOptions(peephole=True)
        m1 = generate_wasm(compile_ir(TINY_C), plain)
        m2 = generate_wasm(compile_ir(TINY_C), opt)
        validate_module(m2)
        out1, _ = run_wasm_main(m1)
        out2, _ = run_wasm_main(m2)
        assert out1 == out2
        assert m2.static_instruction_count <= m1.static_instruction_count

    def test_peephole_tee_rewrite(self):
        body = [(int(Op.LOCAL_SET), 3), (int(Op.LOCAL_GET), 3)]
        assert peephole(body) == [(int(Op.LOCAL_TEE), 3)]

    def test_vector_annotation_adds_instructions(self):
        from repro.ir.passes import vectorize_loops
        plain_ir = compile_ir(TINY_C)
        vector_ir = compile_ir(TINY_C)
        from repro.ir.passes import dead_code_elimination
        dead_code_elimination(vector_ir)
        vectorize_loops(vector_ir)
        plain = generate_wasm(plain_ir)
        vector = generate_wasm(vector_ir)
        _, p_inst = run_wasm_main(plain)
        _, v_inst = run_wasm_main(vector)
        # Scalarisation overhead: more dynamic instructions, same result.
        assert v_inst.stats.instructions > p_inst.stats.instructions


class TestJsBackend:
    def test_tiny_c_result(self):
        outputs, _ = run_js_main(generate_js(compile_ir(TINY_C)))
        assert outputs[0] == pytest.approx(TINY_C_CHECKSUM)

    def test_typed_arrays_used(self):
        source = generate_js(compile_ir(TINY_C))
        assert "new Float64Array(" in source

    def test_int_coercions_emitted(self):
        source = generate_js(compile_ir(
            "int f(int a, int b) { return a + b; }"))
        assert "| 0" in source

    def test_imul_for_i32_multiplication(self):
        source = generate_js(compile_ir(
            "int f(int a, int b) { return a * b; }"))
        assert "Math.imul(a, b)" in source

    def test_i64_runtime_included_when_needed(self):
        with_i64 = generate_js(compile_ir(
            "long f(long a) { return a * 3L; }"))
        without = generate_js(compile_ir(
            "int f(int a) { return a * 3; }"))
        assert "__i64_mul" in with_i64
        assert "__i64_mul" not in without

    def test_i64_array_split_into_halves(self):
        source = generate_js(compile_ir(
            "long data[4]; void f() { data[0] = 7L; }"))
        assert "data__lo" in source and "data__hi" in source

    def test_unsigned_comparison_coerced(self):
        source = generate_js(compile_ir(
            "int f(unsigned a, unsigned b) { return a < b; }"))
        assert ">>> 0" in source

    def test_unsigned_to_signed_cast_resigns(self):
        """A u32 carried in raw unsigned form (here a rematerialized
        constant >= 2^31) must be coerced back to |0 form when it
        enters signed context — a later signed compare would otherwise
        see a huge positive JS number."""
        from repro.compilers import CheerpCompiler
        program = """
        int main() {
          unsigned u = 2147483648u;
          int s = (int)(u >> 0);
          printf("%d", s < 0 ? 1 : 0);
          return 0;
        }
        """
        artifact = CheerpCompiler().compile_js(program, name="resign")
        output, _ = run_js_main(artifact.source)
        assert output == [1]


class TestX86Backend:
    def test_tiny_c_result(self):
        program = generate_x86(compile_ir(TINY_C))
        _, stats = execute_program(program, "main")
        assert stats.prints[0] == pytest.approx(TINY_C_CHECKSUM)

    def test_vector_flag_cuts_cost(self):
        from repro.ir.passes import dead_code_elimination, vectorize_loops
        plain = generate_x86(compile_ir(TINY_C))
        vector_ir = compile_ir(TINY_C)
        dead_code_elimination(vector_ir)
        vectorize_loops(vector_ir)
        vector = generate_x86(vector_ir)
        _, p_stats = execute_program(plain, "main")
        _, v_stats = execute_program(vector, "main")
        assert v_stats.cycles < p_stats.cycles
        assert v_stats.prints == p_stats.prints

    def test_code_size_metric(self):
        from repro.native import program_byte_size
        program = generate_x86(compile_ir(TINY_C))
        assert program_byte_size(program) > 100
