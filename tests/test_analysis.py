"""Statistics helpers and table rendering."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    arithmetic_mean, five_number_summary, format_table, geomean,
    speedup_slowdown_split,
)

POSITIVE = st.floats(min_value=1e-3, max_value=1e6)


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(POSITIVE, min_size=1, max_size=30))
    @settings(max_examples=80)
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)

    @given(st.lists(POSITIVE, min_size=1, max_size=20), POSITIVE)
    @settings(max_examples=60)
    def test_scale_invariance(self, values, scale):
        scaled = geomean([v * scale for v in values])
        assert scaled == pytest.approx(geomean(values) * scale, rel=1e-6)


class TestSplit:
    def test_counts_and_gmeans(self):
        # Wasm twice as fast on two, half speed on one.
        stats = speedup_slowdown_split([1.0, 1.0, 4.0], [2.0, 2.0, 2.0])
        assert stats["su_count"] == 2
        assert stats["sd_count"] == 1
        assert stats["su_gmean"] == pytest.approx(2.0)
        assert stats["sd_gmean"] == pytest.approx(2.0)
        assert stats["all_gmean"] == pytest.approx((2 * 2 * 0.5) ** (1 / 3))

    def test_all_speedups(self):
        stats = speedup_slowdown_split([1.0], [3.0])
        assert stats["sd_count"] == 0 and stats["sd_gmean"] is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            speedup_slowdown_split([1.0], [1.0, 2.0])

    @given(st.lists(POSITIVE, min_size=1, max_size=20),
           st.lists(POSITIVE, min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_counts_partition(self, wasm, js):
        n = min(len(wasm), len(js))
        stats = speedup_slowdown_split(wasm[:n], js[:n])
        assert stats["su_count"] + stats["sd_count"] == n


class TestFiveNumber:
    def test_known_quartiles(self):
        summary = five_number_summary([1, 2, 3, 4, 5])
        assert summary.minimum == 1
        assert summary.median == 3
        assert summary.maximum == 5
        assert summary.q1 == 2 and summary.q3 == 4

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50))
    @settings(max_examples=80)
    def test_ordering_invariant(self, values):
        s = five_number_summary(values)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum

    def test_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2


class TestTables:
    def test_format_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.234567], ["bbbb", None]],
                            title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "1.23" in text
        assert "-" in lines[-1]   # None renders as '-'

    def test_all_rows_present(self):
        rows = [[f"r{i}", i] for i in range(10)]
        text = format_table(["n", "v"], rows)
        assert all(f"r{i}" in text for i in range(10))
