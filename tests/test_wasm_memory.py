"""Linear memory: growth semantics, bounds, typed access, sparse frames."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrapError
from repro.wasm import LinearMemory, WASM_PAGE_SIZE


class TestLimits:
    def test_initial_pages(self):
        mem = LinearMemory(min_pages=3)
        assert mem.pages == 3
        assert mem.byte_size == 3 * WASM_PAGE_SIZE

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            LinearMemory(min_pages=5, max_pages=2)
        with pytest.raises(ValueError):
            LinearMemory(min_pages=-1)

    def test_grow_returns_old_size(self):
        mem = LinearMemory(min_pages=1, max_pages=10)
        assert mem.grow(3) == 1
        assert mem.pages == 4

    def test_grow_beyond_max_fails(self):
        mem = LinearMemory(min_pages=1, max_pages=2)
        assert mem.grow(5) == -1
        assert mem.pages == 1

    def test_grow_negative_fails(self):
        mem = LinearMemory(min_pages=1)
        assert mem.grow(-1) == -1

    def test_grow_zero_succeeds(self):
        mem = LinearMemory(min_pages=2)
        assert mem.grow(0) == 2

    def test_memory_never_shrinks(self):
        # The linear-memory property behind the paper's memory findings.
        mem = LinearMemory(min_pages=1, max_pages=100)
        mem.grow(50)
        assert mem.peak_pages == 51
        assert mem.byte_size == 51 * WASM_PAGE_SIZE

    def test_grow_count_starts_zero(self):
        # grow_count is bumped by the VM, not by grow() itself.
        mem = LinearMemory(min_pages=1)
        assert mem.grow_count == 0


class TestAccess:
    def test_zero_initialised(self):
        mem = LinearMemory(min_pages=1)
        assert mem.load_i32(1000) == 0
        assert mem.load_f64(2000) == 0.0

    def test_i32_roundtrip_signed(self):
        mem = LinearMemory(min_pages=1)
        mem.store_i32(4, -123456)
        assert mem.load_i32(4) == -123456

    def test_i64_roundtrip(self):
        mem = LinearMemory(min_pages=1)
        mem.store_i64(8, -(1 << 62))
        assert mem.load_i64(8) == -(1 << 62)

    def test_f64_roundtrip(self):
        mem = LinearMemory(min_pages=1)
        mem.store_f64(16, 3.14159)
        assert mem.load_f64(16) == 3.14159

    def test_u8_wraps(self):
        mem = LinearMemory(min_pages=1)
        mem.store_u8(0, 300)
        assert mem.load_u8(0) == 300 & 0xFF

    def test_s8_sign_extends(self):
        mem = LinearMemory(min_pages=1)
        mem.store_u8(0, 0xFF)
        assert mem.load_s8(0) == -1

    def test_u16_roundtrip(self):
        mem = LinearMemory(min_pages=1)
        mem.store_u16(2, 0xBEEF)
        assert mem.load_u16(2) == 0xBEEF

    def test_oob_load_traps(self):
        mem = LinearMemory(min_pages=1)
        with pytest.raises(TrapError):
            mem.load_i32(WASM_PAGE_SIZE - 2)

    def test_oob_store_traps(self):
        mem = LinearMemory(min_pages=1)
        with pytest.raises(TrapError):
            mem.store_f64(WASM_PAGE_SIZE, 1.0)

    def test_negative_address_traps(self):
        mem = LinearMemory(min_pages=1)
        with pytest.raises(TrapError):
            mem.load_u8(-1)

    def test_access_after_grow(self):
        mem = LinearMemory(min_pages=1, max_pages=4)
        with pytest.raises(TrapError):
            mem.store_i32(WASM_PAGE_SIZE + 4, 7)
        mem.grow(1)
        mem.store_i32(WASM_PAGE_SIZE + 4, 7)
        assert mem.load_i32(WASM_PAGE_SIZE + 4) == 7


class TestSparseFrames:
    def test_large_commit_small_resident(self):
        # Paper-scale memories must not materialise untouched pages.
        mem = LinearMemory(min_pages=2000)       # 131 MB committed
        mem.store_f64(8, 1.0)
        mem.store_f64(100 * 1024 * 1024, 2.0)
        assert mem.byte_size == 2000 * WASM_PAGE_SIZE
        assert mem.resident_bytes <= 4 * 65536

    def test_write_read_bytes_roundtrip(self):
        mem = LinearMemory(min_pages=3)
        data = bytes(range(256)) * 4
        mem.write_bytes(100, data)
        assert mem.read_bytes(100, len(data)) == data

    def test_write_bytes_across_frame_boundary(self):
        mem = LinearMemory(min_pages=3)
        data = b"\xAB" * 300
        addr = 65536 - 150
        mem.write_bytes(addr, data)
        assert mem.read_bytes(addr, 300) == data


@given(addr=st.integers(min_value=0, max_value=65528),
       value=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
@settings(max_examples=60)
def test_i32_roundtrip_property(addr, value):
    mem = LinearMemory(min_pages=1)
    mem.store_i32(addr, value)
    assert mem.load_i32(addr) == value


@given(addr=st.integers(min_value=0, max_value=65528),
       value=st.floats(allow_nan=False))
@settings(max_examples=60)
def test_f64_roundtrip_property(addr, value):
    mem = LinearMemory(min_pages=1)
    mem.store_f64(addr, value)
    assert mem.load_f64(addr) == value


@given(value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
@settings(max_examples=60)
def test_i64_roundtrip_property(value):
    mem = LinearMemory(min_pages=1)
    mem.store_i64(64, value)
    assert mem.load_i64(64) == value
