"""Golden-parity gate for the engine-core refactor.

The fixtures under ``tests/goldens/`` were captured from the pre-refactor
measurement pipeline (rendered tables as text, every float as ``repr`` for
bit-exactness).  These tests recompute the same experiment slices live and
require byte-identical results: the shared TierController / hostlib /
adapter path must not move a single bit of any experiment output.

Regenerate (only after an *intentional* model change) with::

    PYTHONPATH=src REPRO_RESULT_CACHE=0 python tests/goldens/capture.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.golden_config import golden_browsers, golden_jit_tiers, \
    golden_opt_levels

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _load(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


def _assert_identical(live, golden, path=""):
    assert type(live) is type(golden), \
        f"{path}: type {type(live).__name__} != {type(golden).__name__}"
    if isinstance(live, dict):
        assert sorted(live) == sorted(golden), f"{path}: key sets differ"
        for key in live:
            _assert_identical(live[key], golden[key], f"{path}/{key}")
    elif isinstance(live, list):
        assert len(live) == len(golden), f"{path}: length differs"
        for i, (a, b) in enumerate(zip(live, golden)):
            _assert_identical(a, b, f"{path}[{i}]")
    else:
        assert live == golden, f"{path}: {live!r} != {golden!r}"


@pytest.mark.slow
def test_jit_tiers_golden_parity():
    _assert_identical(golden_jit_tiers(), _load("jit_tiers"))


@pytest.mark.slow
def test_browsers_golden_parity():
    _assert_identical(golden_browsers(), _load("browsers"))


@pytest.mark.slow
def test_opt_levels_golden_parity():
    _assert_identical(golden_opt_levels(), _load("opt_levels"))


@pytest.mark.slow
def test_opt_levels_parallel_matches_serial_golden():
    """A fault-free parallel sweep must reproduce the serial goldens
    byte for byte: the fault-tolerant scheduler may not perturb results
    when nothing fails."""
    _assert_identical(golden_opt_levels(jobs=3), _load("opt_levels"))


@pytest.mark.slow
def test_opt_levels_armed_fault_plan_matches_golden():
    """Arming fault injection for a cell that never runs (and enabling
    retries) must also leave every byte of the output untouched."""
    from repro.harness.parallel import FaultPlan
    live = golden_opt_levels(jobs=2, retries=2,
                             fault_plan=FaultPlan({"no-such-cell": "crash"}))
    _assert_identical(live, _load("opt_levels"))
