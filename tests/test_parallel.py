"""Parallel experiment scheduler: ordering, env wiring, and the
serial-vs-parallel determinism contract (bit-identical results).

Fault-tolerance behavior (retries, timeouts, fault injection, partial
results) is covered separately in ``tests/test_sweep_faults.py``."""

import os

import pytest

from repro.errors import SweepError
from repro.experiments import (
    ExperimentContext, compare_cheerp_emscripten, figure5_opt_levels,
)
from repro.harness.parallel import JOBS_ENV, default_jobs, parallel_map
from repro.suites import all_benchmarks

KEEP = {"gemm", "SHA"}


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def _ctx(jobs):
    context = ExperimentContext(quick=True, repetitions=1, jobs=jobs)
    context.benchmarks = lambda: [b for b in all_benchmarks()
                                  if b.name in KEEP]
    return context


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=4) == \
            [x * x for x in items]

    def test_serial_path(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=8) == []

    def test_worker_exception_raises_sweep_error(self):
        """A failing cell no longer aborts the map with the bare worker
        exception: parallel_map raises SweepError carrying the partial
        results (every other cell completed)."""
        with pytest.raises(SweepError) as excinfo:
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2)
        sweep = excinfo.value.sweep
        assert [sweep.values[i] for i in (0, 1, 3)] == [1, 2, 4]
        assert [f.index for f in sweep.failures] == [2]
        assert sweep.failures[0].error == "ValueError"

    def test_jobs_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        assert default_jobs() == 1
        monkeypatch.setenv(JOBS_ENV, "7")
        assert default_jobs() == 7
        monkeypatch.setenv(JOBS_ENV, "garbage")
        assert default_jobs() == (os.cpu_count() or 1)


class TestDeterminism:
    """REPRO_JOBS>1 must produce results byte-identical to serial runs."""

    def test_figure5_bit_identical(self):
        serial = figure5_opt_levels(_ctx(1))
        parallel = figure5_opt_levels(_ctx(3))
        assert parallel["text"] == serial["text"]
        assert parallel["data"] == serial["data"]

    def test_compiler_compare_bit_identical(self):
        serial = compare_cheerp_emscripten(_ctx(1))
        parallel = compare_cheerp_emscripten(_ctx(2))
        assert parallel["text"] == serial["text"]
        assert parallel["summary"] == serial["summary"]
        assert parallel["data"] == serial["data"]

    def test_benchmark_subset_override_survives_fanout(self):
        # The benchmark list is taken from the caller's context even when
        # workers reconstruct their own contexts.
        result = figure5_opt_levels(_ctx(2))
        assert set(result["data"]["wasm"]) == KEEP