"""Shared definition of the golden-parity experiment configurations.

Used both by ``tests/goldens/capture.py`` (which records the fixtures) and
``tests/test_golden_parity.py`` (which recomputes them live and compares).
Keeping one definition guarantees the capture and the check run the exact
same benchmark subsets and settings.

Floats are serialized via ``repr`` so the comparison is bit-exact, not
approximate: the engine-core refactor must not move a single cycle.
"""

from repro.experiments import (
    ExperimentContext, table2_summary, table7_tier_comparison,
    table8_browsers_platforms,
)
from repro.suites import all_benchmarks

#: Benchmark subsets: small enough to run live in tier-1, wide enough to
#: exercise both suites, both tier pairs, and every optimization level.
TIER_SET = ("gemm", "jacobi-2d", "SHA", "DFADD", "MIPS")
BROWSER_SET = ("gemm", "jacobi-2d", "SHA")
OPT_SET = ("gemm", "jacobi-2d", "SHA", "atax")


def _context(names, **kwargs):
    ctx = ExperimentContext(quick=True, repetitions=1, **kwargs)
    keep = set(names)
    ctx.benchmarks = lambda: [b for b in all_benchmarks()
                              if b.name in keep]
    return ctx


def _freeze(value):
    """Recursively convert an experiment payload to a JSON-stable form:
    floats become their ``repr`` (bit-exact), tuple keys become strings."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {"|".join(map(str, k)) if isinstance(k, tuple) else str(k):
                _freeze(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    return value


def golden_jit_tiers(**kwargs):
    result = table7_tier_comparison(_context(TIER_SET, **kwargs))
    return {"text": result["text"],
            "data": _freeze(result["data"]),
            "summary": _freeze(result["summary"])}


def golden_browsers(**kwargs):
    result = table8_browsers_platforms(_context(BROWSER_SET, **kwargs))
    return {"text": result["text"], "data": _freeze(result["data"])}


def golden_opt_levels(**kwargs):
    result = table2_summary(_context(OPT_SET, **kwargs))
    return {"text": result["text"],
            "data": _freeze(result["data"]),
            "fig5_text": result["fig5"]["text"],
            "fig6_text": result["fig6"]["text"]}
