"""Toolchain facades and execution environments."""

import pytest

from repro.compilers import CheerpCompiler, EmscriptenCompiler, \
    LlvmX86Compiler
from repro.env import (
    ChromeFlags, DESKTOP, MOBILE, chrome_desktop, chrome_mobile,
    edge_desktop, edge_mobile, firefox_desktop, firefox_mobile,
)
from repro.env.adb import AdbCollector
from repro.errors import LinkError
from repro.harness import HtmlPage, PageRunner

from tests.conftest import TINY_C, TINY_C_CHECKSUM


class TestToolchains:
    def test_all_levels_defined(self, cheerp, emscripten, llvm_x86):
        for toolchain in (cheerp, emscripten, llvm_x86):
            pipelines = toolchain.pipelines()
            for level in ("O0", "O1", "O2", "O3", "O4", "Os", "Oz",
                          "Ofast"):
                assert level in pipelines

    def test_cheerp_o3_drops_inliner(self, cheerp):
        # The "less inlining at O3" behaviour the paper ties to LLVM
        # bug 37449.
        assert "inline" in cheerp.pipelines()["O2"]
        assert "inline" not in cheerp.pipelines()["O3"]

    def test_x86_ofast_reruns_globalopt(self, llvm_x86):
        ofast = llvm_x86.pipelines()["Ofast"]
        assert ofast.count("globalopt") >= 2 or \
            ofast[-1] in ("dce", "globalopt")

    def test_precompiled_libs_conflict(self):
        cheerp = CheerpCompiler(use_precompiled_libs=True)
        source = "double sqrt(double x) { return x; }\n" + TINY_C
        with pytest.raises(LinkError, match="conflicting symbol"):
            cheerp.compile_wasm(source)

    def test_precompiled_libs_disabled_by_default(self, cheerp):
        source = "double mysq(double x) { return x * x; }\n" + TINY_C
        cheerp.compile_wasm(source)  # no LinkError

    def test_heap_flag_changes_memory(self):
        small = CheerpCompiler(linear_heap_size=256 * 1024)
        big = CheerpCompiler(linear_heap_size=8 * 1024 * 1024)
        a = small.compile_wasm(TINY_C)
        b = big.compile_wasm(TINY_C)
        assert b.meta["target_pages"] > a.meta["target_pages"]

    def test_emscripten_has_no_js_target(self, emscripten):
        # §2.1.1: Emscripten produces asm.js, not standard JavaScript.
        assert not hasattr(emscripten, "compile_js")

    def test_emscripten_granule(self, emscripten):
        artifact = emscripten.compile_wasm(TINY_C)
        assert artifact.meta["toolchain"] == "emscripten"
        # 16 MiB granule → target pages multiple of 256.
        assert artifact.meta["target_pages"] % 256 == 0

    def test_artifact_code_sizes(self, cheerp, llvm_x86):
        wasm = cheerp.compile_wasm(TINY_C)
        js = cheerp.compile_js(TINY_C)
        x86 = llvm_x86.compile(TINY_C)
        assert wasm.code_size == len(wasm.binary) > 100
        assert js.code_size > 100
        assert x86.code_size > 100

    def test_defines_select_input_size(self, cheerp):
        small = cheerp.compile_wasm(TINY_C, {"N": 4})
        # The source has its own #define N 8; -D must override it... the
        # preprocessor applies CLI defines first, so the in-file #define
        # wins only if the name is still undefined.
        assert small.module is not None


class TestChromeFlags:
    def test_parse_incognito(self):
        flags = ChromeFlags.parse("chrome.exe --incognito bench.html")
        assert flags.incognito and not flags.js_flags

    def test_parse_no_opt(self):
        flags = ChromeFlags.parse(
            'chrome.exe --js-flags="--no-opt" --incognito')
        assert flags.jit_disabled

    def test_parse_liftoff_only(self):
        flags = ChromeFlags.parse(
            'chrome.exe --js-flags="--liftoff --no-wasm-tier-up"')
        assert flags.wasm_basic_only and not flags.wasm_optimizing_only

    def test_parse_turbofan_only(self):
        flags = ChromeFlags.parse(
            'chrome.exe --js-flags="--no-liftoff --no-wasm-tier-up"')
        assert flags.wasm_optimizing_only

    def test_apply_disables_jit(self):
        profile = ChromeFlags.parse(
            'chrome.exe --js-flags="--no-opt"').apply(chrome_desktop())
        assert not profile.js.jit_enabled

    def test_apply_tier_selection(self):
        basic = ChromeFlags.parse(
            'chrome.exe --js-flags="--liftoff --no-wasm-tier-up"'
        ).apply(chrome_desktop())
        assert not basic.wasm.optimizing_enabled
        opt = ChromeFlags.parse(
            'chrome.exe --js-flags="--no-liftoff --no-wasm-tier-up"'
        ).apply(chrome_desktop())
        assert not opt.wasm.basic_enabled

    def test_command_line_roundtrip(self):
        flags = ChromeFlags(incognito=True, js_flags=["--no-opt"])
        line = flags.command_line()
        assert ChromeFlags.parse(line).jit_disabled


class TestProfiles:
    def test_six_settings_exist(self):
        profiles = [chrome_desktop(), firefox_desktop(), edge_desktop(),
                    chrome_mobile(), firefox_mobile(), edge_mobile()]
        names = {(p.name, p.platform_kind) for p in profiles}
        assert len(names) == 6

    def test_firefox_fast_boundary(self):
        # §4.5: Firefox's JS↔Wasm calls are much cheaper.
        assert firefox_desktop().wasm.boundary_cost < \
            0.2 * chrome_desktop().wasm.boundary_cost

    def test_firefox_wasm_code_quality_leads_desktop(self):
        assert firefox_desktop().wasm.opt_exec_factor < \
            chrome_desktop().wasm.opt_exec_factor

    def test_cranelift_on_mobile_firefox(self):
        profile = firefox_mobile()
        assert profile.wasm.optimizing_name == "Cranelift"
        assert profile.wasm.opt_exec_factor > \
            chrome_mobile().wasm.opt_exec_factor

    def test_platforms(self):
        assert DESKTOP.kind == "desktop" and MOBILE.kind == "mobile"
        assert MOBILE.cycles_per_ms < DESKTOP.cycles_per_ms
        assert DESKTOP.ms(DESKTOP.cycles_per_ms) == 1.0

    def test_with_wasm_does_not_mutate(self):
        profile = chrome_desktop()
        clone = profile.with_wasm(basic_enabled=False)
        assert profile.wasm.basic_enabled
        assert not clone.wasm.basic_enabled


class TestHarness:
    def test_page_html_minimal(self, cheerp):
        js = cheerp.compile_js(TINY_C)
        page = HtmlPage.for_js(js)
        assert page.html.startswith("<!DOCTYPE html>")
        assert page.html.count("<script>") == 1
        assert "performance.now()" in page.script

    def test_wasm_loader_page(self, cheerp):
        wasm = cheerp.compile_wasm(TINY_C)
        page = HtmlPage.for_wasm(wasm)
        assert "WebAssembly.instantiate" in page.script

    def test_runner_js_measurement(self, cheerp, runner):
        result = runner.run_js(cheerp.compile_js(TINY_C))
        assert result.output[0] == pytest.approx(TINY_C_CHECKSUM)
        assert result.time_ms > 0
        assert result.memory_kb > 100
        assert result.detail["timer_ms"] is not None

    def test_runner_wasm_measurement(self, cheerp, runner):
        result = runner.run_wasm(cheerp.compile_wasm(TINY_C))
        assert result.output[0] == pytest.approx(TINY_C_CHECKSUM)
        assert result.detail["linear_pages"] > 0

    def test_repetitions_deterministic(self, cheerp):
        runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=3)
        result = runner.run_js(cheerp.compile_js(TINY_C))
        assert len(result.times_ms) == 3
        assert max(result.times_ms) == min(result.times_ms)

    def test_jit_flags_slow_js_down(self, cheerp):
        fast = PageRunner(chrome_desktop(), DESKTOP, repetitions=1)
        slow = PageRunner(chrome_desktop(), DESKTOP,
                          flags=ChromeFlags.parse(
                              'chrome.exe --js-flags="--no-opt"'),
                          repetitions=1)
        js = cheerp.compile_js(TINY_C)
        assert slow.run_js(js).time_ms > fast.run_js(js).time_ms

    def test_tier_settings_order_wasm(self, cheerp):
        wasm = cheerp.compile_wasm(TINY_C)
        default = PageRunner(chrome_desktop(), DESKTOP,
                             repetitions=1).run_wasm(wasm).time_ms
        basic_only = PageRunner(
            chrome_desktop().with_wasm(optimizing_enabled=False),
            DESKTOP, repetitions=1).run_wasm(wasm).time_ms
        assert basic_only >= default * 0.9

    def test_adb_requires_mobile(self):
        with pytest.raises(ValueError):
            AdbCollector(DESKTOP, chrome_desktop())

    def test_mobile_runner_uses_adb(self, cheerp):
        runner = PageRunner(chrome_mobile(), MOBILE, repetitions=1)
        assert isinstance(runner.collector, AdbCollector)
        result = runner.run_js(cheerp.compile_js(TINY_C))
        assert result.output[0] == pytest.approx(TINY_C_CHECKSUM)
        assert runner.collector.transcript  # adb commands were "issued"

    def test_mobile_slower_than_desktop(self, cheerp):
        js = cheerp.compile_js(TINY_C)
        desktop = PageRunner(chrome_desktop(), DESKTOP,
                             repetitions=1).run_js(js).time_ms
        mobile = PageRunner(chrome_mobile(), MOBILE,
                            repetitions=1).run_js(js).time_ms
        assert mobile > 2 * desktop
